"""Placement search over a compiled chain.

Two strategies, both deterministic:

* :func:`enumerate_placements` — exhaustive: every joint-legal
  assignment of feasible backends, priced and sorted by modeled cost
  (ties broken by the placement tuple, so output order never depends
  on dict/set iteration).  Chains are short — three NFs over three
  backends is 27 candidates — so exhaustion is cheap and doubles as the
  ground truth the greedy result is checked against in tests.
* :func:`greedy_place` — the cost-driven heuristic the CLI and harness
  use by default: walk the chain left to right, picking for each NF the
  feasible backend minimising its own cost plus the boundary-crossing
  charge from the previous NF's backend (ties broken in
  :data:`repro.nf.cost.BACKENDS` order).  If the greedy assignment
  violates a joint constraint (shared Trio timers, PISA stage budget),
  it falls back to the cheapest enumerated placement.
"""

from __future__ import annotations

import itertools
from typing import List, Tuple

from repro.nf.chain import ChainError, CompiledChain, PlacementCost
from repro.nf.cost import CROSSING_LATENCY_S

__all__ = ["enumerate_placements", "greedy_place"]


def enumerate_placements(compiled: CompiledChain) -> Tuple[PlacementCost, ...]:
    """Every joint-legal placement, cheapest first.

    Raises :class:`ChainError` if no legal placement exists (an NF with
    an empty feasible set, or joint constraints excluding everything).
    """
    per_nf = [compiled.feasible_backends(name) for name in compiled.names]
    options: List[PlacementCost] = []
    for candidate in itertools.product(*per_nf):
        if compiled.validate_placement(candidate):
            continue
        options.append(compiled.placement_costs(candidate))
    if not options:
        raise ChainError(
            f"chain {compiled.spec!r} has no legal placement"
        )
    options.sort(key=lambda option: (option.per_packet_s, option.placement))
    return tuple(options)


def greedy_place(compiled: CompiledChain) -> Tuple[str, ...]:
    """Cost-driven greedy placement (with exhaustive fallback)."""
    by_backend = {model.backend: model for model in compiled.models}
    placement: List[str] = []
    previous = ""
    for name, nf in zip(compiled.names, compiled.nfs):
        backends = compiled.feasible_backends(name)
        if not backends:
            raise ChainError(f"NF {name!r} is feasible on no backend")
        best: Tuple[float, int] = (float("inf"), len(backends))
        best_backend = backends[0]
        for order, backend in enumerate(backends):
            nf_cost = by_backend[backend].cost(
                nf, compiled.parse_bounds.get(name, 0.0)
            ).per_packet_s
            crossing = (
                CROSSING_LATENCY_S
                if previous and backend != previous else 0.0
            )
            candidate = (nf_cost + crossing, order)
            if candidate < best:
                best = candidate
                best_backend = backend
        placement.append(best_backend)
        previous = best_backend
    if compiled.validate_placement(placement):
        # Greedy tripped a joint constraint; take the cheapest legal one.
        return enumerate_placements(compiled)[0].placement
    return tuple(placement)
