"""Packet-level execution of a placed NF chain.

:func:`generate_trace` synthesises a deterministic packet trace (real
wire-format packets, parsed through the shared
:func:`repro.net.headers.flow_key` codec into :class:`PacketView`\\ s)
and :func:`run_chain` pushes it through a chain under a given
placement.  NF semantics live in logical packet-count time, so the
*results* — per-flow verdicts, NF counters, exported records — depend
only on the trace and the chain, never on the placement; the placement
determines only the modeled cost.  :meth:`ChainRunResult.fingerprint`
hashes the results canonically, which is what the placement-identity
tests and ``--validate-all`` compare.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import FlowKey, flow_key
from repro.net.packet import Packet
from repro.nf.base import (
    NF,
    NFState,
    PacketView,
    VERDICT_CONSUME,
    VERDICT_DROP,
    VERDICT_FORWARD,
)
from repro.sim import Environment
from repro.trioml.protocol import TRIO_ML_UDP_PORT

__all__ = [
    "ChainRunResult",
    "generate_trace",
    "packet_view",
    "run_chain",
]


def packet_view(index: int, packet: Packet) -> PacketView:
    """Parse one wire-format packet into the typed NF view.

    Public so other trace producers — e.g. the
    :mod:`repro.traffic` packet adapter — share the exact parsing
    (same ``flow_key`` codec, same payload-word extraction) that
    :func:`generate_trace` uses.
    """
    flow = flow_key(packet)
    __, __, __, payload = packet.parse_udp()
    word = int.from_bytes(payload[:4], "big") if len(payload) >= 4 else 0
    return PacketView(
        index=index,
        flow=flow,
        length=len(packet),
        payload_len=len(payload),
        payload_word=word,
    )


def generate_trace(
    num_packets: int,
    seed: int = 0,
    benign_sources: int = 24,
    attack_sources: int = 3,
    agg_groups: int = 4,
    attack_fraction: float = 0.25,
    agg_fraction: float = 0.25,
) -> Tuple[PacketView, ...]:
    """A deterministic mixed trace: benign flows, attackers, aggregation.

    Attackers concentrate traffic on few sources (so the firewall's
    per-epoch budgets trip and blocklisting engages); aggregation
    packets target ``agg_groups`` destinations on the Trio-ML port with
    a 4-byte value payload; the rest is benign background spread over
    ``benign_sources`` flows.  Identical for a given argument tuple —
    the trace is derived from one named RNG stream.
    """
    if num_packets < 1:
        raise ValueError(f"trace needs >= 1 packets: {num_packets}")
    env = Environment(initial_time=0.0, seed=seed)
    rng = env.rng_stream("nf.trace")
    src_mac = MACAddress(0x02_00_00_00_00_01)
    dst_mac = MACAddress(0x02_00_00_00_00_02)
    views: List[PacketView] = []
    for index in range(num_packets):
        draw = rng.random()
        if draw < attack_fraction:
            src_n = rng.randrange(attack_sources)
            packet = Packet.udp(
                src_mac=src_mac,
                dst_mac=dst_mac,
                src_ip=IPv4Address(f"10.9.9.{src_n + 1}"),
                dst_ip=IPv4Address("192.168.0.1"),
                src_port=3000 + src_n,
                dst_port=443,
                payload=bytes(64),
            )
        elif draw < attack_fraction + agg_fraction:
            group = rng.randrange(agg_groups)
            value = rng.randrange(1 << 16)
            packet = Packet.udp(
                src_mac=src_mac,
                dst_mac=dst_mac,
                src_ip=IPv4Address(f"10.1.0.{rng.randrange(8) + 1}"),
                dst_ip=IPv4Address(f"10.200.0.{group + 1}"),
                src_port=4000 + group,
                dst_port=TRIO_ML_UDP_PORT,
                payload=value.to_bytes(4, "big"),
            )
        else:
            src_n = rng.randrange(benign_sources)
            packet = Packet.udp(
                src_mac=src_mac,
                dst_mac=dst_mac,
                src_ip=IPv4Address(f"10.0.0.{src_n + 1}"),
                dst_ip=IPv4Address(f"192.168.0.{src_n % 8 + 1}"),
                src_port=1000 + src_n,
                dst_port=2000 + src_n % 16,
                payload=bytes(16 + rng.randrange(4) * 32),
            )
        views.append(packet_view(index, packet))
    return tuple(views)


@dataclass
class ChainRunResult:
    """Everything one chain execution produced, plus its modeled cost."""

    spec: str
    placement: Tuple[str, ...]
    packets: int
    #: flow -> (forwarded, dropped, consumed) counts over the trace.
    flow_verdicts: Dict[FlowKey, Tuple[int, int, int]]
    #: nf name -> counter snapshot.
    nf_counters: Dict[str, Dict[str, int]]
    #: nf name -> exported records, in export order.
    nf_exports: Dict[str, Tuple[Tuple[object, ...], ...]]
    #: Modeled per-packet cost of the placement, seconds.
    per_packet_s: float

    @property
    def modeled_packets_per_s(self) -> float:
        if self.per_packet_s <= 0:
            return float("inf")
        return 1.0 / self.per_packet_s

    def fingerprint(self) -> str:
        """Canonical digest of the semantic results (placement excluded).

        Two runs of the same chain over the same trace must produce the
        same fingerprint whatever the placement and whether they ran in
        this process or a worker — the bit-identical contract.
        """
        parts: List[str] = [self.spec, str(self.packets)]
        for flow in sorted(self.flow_verdicts):
            parts.append(f"{flow}:{self.flow_verdicts[flow]}")
        for name in sorted(self.nf_counters):
            counters = self.nf_counters[name]
            for key in sorted(counters):
                parts.append(f"{name}.{key}={counters[key]}")
        for name in sorted(self.nf_exports):
            for record in self.nf_exports[name]:
                parts.append(f"{name}!{record}")
        digest = hashlib.sha256("\n".join(parts).encode("utf-8"))
        return digest.hexdigest()


def run_chain(
    spec: str,
    nfs: Sequence[NF],
    placement: Sequence[str],
    trace: Sequence[PacketView],
    per_packet_s: float = 0.0,
) -> ChainRunResult:
    """Execute ``trace`` through ``nfs`` packet by packet.

    A packet traverses NFs left to right and stops at the first
    non-forward verdict (a dropped packet never reaches later NFs, a
    consumed one was absorbed — e.g. folded into an aggregation
    buffer).  Epochs tick on the global packet index, the shared
    logical clock of every NF regardless of backend.
    """
    if len(nfs) != len(placement):
        raise ValueError(
            f"placement has {len(placement)} backends for {len(nfs)} NFs"
        )
    states: List[NFState] = [NFState() for __ in nfs]
    flow_verdicts: Dict[FlowKey, List[int]] = {}
    epochs_done = [0] * len(nfs)
    for pkt in trace:
        verdict = VERDICT_FORWARD
        for nf, state in zip(nfs, states):
            verdict = nf.process(state, pkt)
            if verdict != VERDICT_FORWARD:
                break
        tally = flow_verdicts.setdefault(pkt.flow, [0, 0, 0])
        if verdict == VERDICT_FORWARD:
            tally[0] += 1
        elif verdict == VERDICT_DROP:
            tally[1] += 1
        elif verdict == VERDICT_CONSUME:
            tally[2] += 1
        else:
            raise ValueError(f"NF returned unknown verdict {verdict!r}")
        tick = pkt.index + 1
        for slot, (nf, state) in enumerate(zip(nfs, states)):
            if tick % nf.epoch_packets == 0:
                nf.on_epoch(state, epochs_done[slot])
                epochs_done[slot] += 1
    return ChainRunResult(
        spec=spec,
        placement=tuple(placement),
        packets=len(trace),
        flow_verdicts={
            flow: (t[0], t[1], t[2]) for flow, t in flow_verdicts.items()
        },
        nf_counters={
            nf.name: nf.counters(state) for nf, state in zip(nfs, states)
        },
        nf_exports={
            nf.name: nf.exports(state) for nf, state in zip(nfs, states)
        },
        per_packet_s=per_packet_s,
    )
