"""Per-backend cost models for NF placement.

Each model prices one NF's per-packet work on one backend, in seconds
of modeled latency per packet — the common currency the placement
search minimises.  The numbers are anchored to the same architectural
parameters the rest of the reproduction simulates:

* **Trio** (:class:`TrioCostModel`): PPE instructions at the
  single-thread issue rate (§2.2: one instruction per
  ``pipeline_depth_cycles``), plus one SRAM-latency XTXN per declared
  hash lookup and RMW (§2.3: ~70 ns).  The instruction count is the
  statically analysed worst-case bound of the NF's Microcode parse
  front-end plus its declared body charge.
* **PISA** (:class:`PisaCostModel`): line-rate admission (one packet
  slot) plus the amortised control-plane register scan that replaces
  timer threads — PISA has no data-plane timers, so periodic work reads
  every declared register element from the control plane once per
  epoch (the SwitchML §6.1 pattern).  Scan-heavy NFs are therefore
  expensive on PISA, which is exactly the paper's argument for Trio's
  timer threads.
* **Host** (:class:`HostCostModel`): the NF's declared per-packet CPU
  nanoseconds on a software worker.

Crossing between backends mid-chain charges one fabric/PCIe hop per
packet (:data:`CROSSING_LATENCY_S`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.nf.base import NF, STATE_TIMER_THREADS
from repro.trio.chipset import GENERATIONS, TrioChipsetConfig

__all__ = [
    "BACKENDS",
    "BACKEND_HOST",
    "BACKEND_PISA",
    "BACKEND_TRIO",
    "CROSSING_LATENCY_S",
    "CostModel",
    "HostCostModel",
    "NFCost",
    "PisaCostModel",
    "TrioCostModel",
    "default_models",
]

BACKEND_TRIO = "trio"
BACKEND_PISA = "pisa"
BACKEND_HOST = "host"

#: Canonical backend order (also the deterministic tie-break order).
BACKENDS: Tuple[str, ...] = (BACKEND_TRIO, BACKEND_PISA, BACKEND_HOST)

#: One packet handed from one backend to the next mid-chain: a fabric
#: hop or PCIe transfer, charged once per boundary per packet.
CROSSING_LATENCY_S = 50e-9


@dataclass(frozen=True)
class NFCost:
    """Modeled per-packet cost of one NF on one backend."""

    nf: str
    backend: str
    per_packet_s: float
    detail: str

    @property
    def per_packet_ns(self) -> float:
        return self.per_packet_s * 1e9


class CostModel:
    """Base: price one NF's per-packet work on this model's backend."""

    backend: str = "?"

    def cost(self, nf: NF, parse_bound: float = 0.0) -> NFCost:
        raise NotImplementedError


class TrioCostModel(CostModel):
    """PPE instruction time plus SRAM XTXN latencies."""

    backend = BACKEND_TRIO

    def __init__(self, config: Optional[TrioChipsetConfig] = None) -> None:
        self.config = config if config is not None else GENERATIONS[5]

    def cost(self, nf: NF, parse_bound: float = 0.0) -> NFCost:
        config = self.config
        instructions = nf.trio_instructions_per_packet(parse_bound)
        hash_ops, rmw_ops = nf.trio_state_ops_per_packet()
        instr_s = instructions * config.single_thread_instr_s
        state_s = (hash_ops + rmw_ops) * config.sram_latency_s
        return NFCost(
            nf=nf.name,
            backend=self.backend,
            per_packet_s=instr_s + state_s,
            detail=(
                f"{instructions:.0f} instr x "
                f"{config.single_thread_instr_s * 1e9:.0f} ns + "
                f"{hash_ops} hash + {rmw_ops} rmw XTXN x "
                f"{config.sram_latency_s * 1e9:.0f} ns"
            ),
        )


class PisaCostModel(CostModel):
    """Line-rate slot plus amortised control-plane epoch scans."""

    backend = BACKEND_PISA

    #: Control-plane read of one register element during an epoch scan.
    CONTROL_READ_S = 20e-9

    def __init__(self, pipeline_rate_pps: float = 1.0e9) -> None:
        self.pipeline_rate_pps = pipeline_rate_pps

    def cost(self, nf: NF, parse_bound: float = 0.0) -> NFCost:
        slot_s = 1.0 / self.pipeline_rate_pps
        has_timers = any(
            spec.kind == STATE_TIMER_THREADS for spec in nf.state_resources()
        )
        scanned = sum(size for __, size, __ in nf.pisa_registers())
        scan_s = 0.0
        if has_timers and scanned:
            scan_s = scanned * self.CONTROL_READ_S / nf.epoch_packets
        return NFCost(
            nf=nf.name,
            backend=self.backend,
            per_packet_s=slot_s + scan_s,
            detail=(
                f"1 pipeline slot ({slot_s * 1e9:.0f} ns) + "
                f"{scanned} reg scan / {nf.epoch_packets} pkt epoch"
                if scan_s else f"1 pipeline slot ({slot_s * 1e9:.0f} ns)"
            ),
        )


class HostCostModel(CostModel):
    """Declared software-worker CPU time."""

    backend = BACKEND_HOST

    def cost(self, nf: NF, parse_bound: float = 0.0) -> NFCost:
        return NFCost(
            nf=nf.name,
            backend=self.backend,
            per_packet_s=nf.host_ns_per_packet * 1e-9,
            detail=f"{nf.host_ns_per_packet:.0f} ns CPU per packet",
        )


def default_models(
    trio_config: Optional[TrioChipsetConfig] = None,
    pipeline_rate_pps: float = 1.0e9,
) -> Tuple[CostModel, ...]:
    """The three shipped cost models, in :data:`BACKENDS` order.

    ``pipeline_rate_pps`` defaults to PisaPipeline's line-rate packet
    budget so the PISA model prices the same device the compiler
    validates against.
    """
    return (
        TrioCostModel(trio_config),
        PisaCostModel(pipeline_rate_pps),
        HostCostModel(),
    )
