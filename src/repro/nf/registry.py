"""Name-keyed registry of network functions.

Mirrors :mod:`repro.collectives.registry`: the registry is the single
source of truth for which NFs exist — chain specs resolve their names
here, the harness enumerates placements from here, and error messages
report whatever is registered *right now*.  Lookups are
case-insensitive; canonical keys are lowercase.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.nf.base import NF

__all__ = [
    "UnknownNFError",
    "available_nfs",
    "get_nf",
    "register_nf",
    "unregister_nf",
]


class UnknownNFError(ValueError):
    """Raised when an NF name is not in the registry."""


_REGISTRY: Dict[str, NF] = {}


def register_nf(nf: NF, replace: bool = False) -> NF:
    """Add ``nf`` under ``nf.name`` (lowercased).

    Registering a name twice is an error unless ``replace=True`` —
    silent shadowing would make chain provenance ambiguous.  Returns
    the NF so calls can be used as expressions.
    """
    name = str(nf.name).strip().lower()
    if not name:
        raise ValueError("NF must have a non-empty name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"NF {name!r} is already registered; pass replace=True to "
            "override it"
        )
    nf.name = name
    _REGISTRY[name] = nf
    return nf


def unregister_nf(name: str) -> NF:
    """Remove and return an NF (mainly for tests registering variants)."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY.pop(key)
    except KeyError:
        raise UnknownNFError(
            f"unknown NF {name!r}; available: {', '.join(available_nfs())}"
        ) from None


def get_nf(name: str) -> NF:
    """Resolve an NF by name, case-insensitively."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownNFError(
            f"unknown NF {name!r}; available: {', '.join(available_nfs())}"
        ) from None


def available_nfs() -> Tuple[str, ...]:
    """Canonical names of every registered NF, sorted."""
    return tuple(sorted(_REGISTRY))
