"""The telemetry NF: per-flow accounting with heavy-hitter export.

This module owns both realisations of the §7 telemetry design:

* :class:`TelemetryMonitor` — the Trio data-path application (per-flow
  Packet/Byte Counters in the Shared Memory System, timer-thread
  sweeps), moved here from ``repro.apps.telemetry`` (now a thin shim);
* :class:`TelemetryNF` — the backend-independent network function used
  by the chain compiler, sweeping in packet-count epochs.

Both share :func:`sweep_decision`, the export/retire rule applied to a
flow at each sweep: export when the packet delta crossed the
heavy-hitter threshold, retire when the REF flag shows a full idle
interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.net.headers import FlowKey, HeaderError, flow_key
from repro.nf.base import (
    NF,
    NFState,
    PacketView,
    STATE_COUNTER,
    STATE_HASH_ENTRIES,
    STATE_TIMER_THREADS,
    StateSpec,
    VERDICT_FORWARD,
)
from repro.obs import bus as _obs
from repro.trio.counters import PacketByteCounter
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext

__all__ = [
    "FlowStats",
    "TelemetryMonitor",
    "TelemetryNF",
    "TelemetryReport",
    "sweep_decision",
]


def sweep_decision(delta_packets: float, threshold: float,
                   ref_seen: bool) -> Tuple[bool, bool]:
    """The per-flow sweep rule shared by the Trio app and the NF.

    Returns ``(export, retire)``: export when the packet delta since
    the last sweep reached ``threshold`` (both in the same unit — per
    second for the timer-driven app, per epoch for the NF), retire when
    the REF flag stayed clear for the whole interval.  A flow can be
    exported *and* retired in the same sweep: a burst that ended within
    one interval still deserves its report.
    """
    return delta_packets >= threshold, not ref_seen


@dataclass
class FlowStats:
    """Per-flow telemetry state: the shared-memory counter plus metadata."""

    counter: PacketByteCounter
    first_seen: float
    #: (packets, bytes) at the previous sweep, for rate computation.
    last_packets: int = 0
    last_bytes: int = 0


@dataclass
class TelemetryReport:
    """One exported heavy-hitter observation."""

    time: float
    flow: FlowKey
    packets: int
    bytes: int
    packets_per_s: float


class TelemetryMonitor(TrioApplication):
    """Line-rate per-flow accounting with timer-thread exports."""

    name = "telemetry"

    def __init__(
        self,
        heavy_hitter_pps: float = 1e6,
        scan_threads: int = 8,
        scan_period_s: float = 1e-3,
        export: Optional[Callable[[TelemetryReport], None]] = None,
        max_flows: int = 100_000,
    ) -> None:
        """``heavy_hitter_pps`` is the per-flow packet-rate threshold for
        export; ``export`` receives each report (defaults to collecting
        into :attr:`reports`)."""
        if scan_threads < 1:
            raise ValueError(f"need at least one scan thread: {scan_threads}")
        if scan_period_s <= 0:
            raise ValueError(f"scan period must be positive: {scan_period_s}")
        self.heavy_hitter_pps = heavy_hitter_pps
        self.scan_threads = scan_threads
        self.scan_period_s = scan_period_s
        self.max_flows = max_flows
        self.reports: List[TelemetryReport] = []
        self._export = export or self.reports.append
        self.flows_tracked = 0
        self.flows_retired = 0
        self.flows_dropped_capacity = 0
        self.pfe: Optional[PFE] = None

    @property
    def _installed(self) -> PFE:
        pfe = self.pfe
        if pfe is None:
            raise RuntimeError("application is not installed on a PFE")
        return pfe

    def on_install(self, pfe: PFE) -> None:
        self.pfe = pfe
        if _obs.enabled():
            _obs.register_collector(self._obs_collect)
        pfe.timers.launch_periodic(
            name="telemetry-sweep",
            num_threads=self.scan_threads,
            period_s=self.scan_period_s,
            callback=self._sweep,
        )

    def _obs_collect(self, registry: Any) -> None:
        """Export the monitor's counters (runs once at finalize)."""
        flows = registry.counter(
            "apps.telemetry.flows", "flow-table transitions", ("event",))
        flows.inc(self.flows_tracked, event="tracked")
        flows.inc(self.flows_retired, event="retired")
        flows.inc(self.flows_dropped_capacity, event="dropped_capacity")
        registry.gauge(
            "apps.telemetry.reports", "heavy-hitter reports exported"
        ).set(len(self.reports))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def handle_packet(self, tctx: ThreadContext,
                      pctx: PacketContext) -> Generator[Any, Any, None]:
        yield from tctx.execute(8)  # parse headers
        try:
            flow = flow_key(pctx.packet)
        except HeaderError:
            pctx.forward()
            return
        pfe = self._installed
        record = yield from tctx.hash_lookup(flow)
        if record is None:
            if len(pfe.hash_table) >= self.max_flows:
                # Table full: forward uncounted rather than stall traffic.
                self.flows_dropped_capacity += 1
                pctx.forward()
                return
            stats = FlowStats(
                counter=PacketByteCounter(pfe.memory),
                first_seen=pfe.env.now,
            )
            record, created = yield from tctx.hash_insert_if_absent(
                flow, stats
            )
            if created:
                self.flows_tracked += 1
        yield from record.value.counter.increment(pctx.length)
        pctx.forward()

    # ------------------------------------------------------------------
    # Timer threads (§7: "suitable for periodic monitoring")
    # ------------------------------------------------------------------

    def _sweep(self, tctx: ThreadContext,
               thread_index: int) -> Generator[Any, Any, None]:
        pfe = self._installed
        table = pfe.hash_table
        records = yield from table.scan_segment(
            thread_index % self.scan_threads, self.scan_threads
        )
        now = pfe.env.now
        for record in records:
            yield from tctx.execute(3)
            stats = record.value
            if not isinstance(stats, FlowStats):
                continue
            packets, nbytes = stats.counter.read()
            delta_packets = packets - stats.last_packets
            rate = delta_packets / self.scan_period_s
            export, retire = sweep_decision(
                rate, self.heavy_hitter_pps, bool(record.ref_flag)
            )
            if export:
                self._export(
                    TelemetryReport(
                        time=now,
                        flow=record.key,
                        packets=packets,
                        bytes=nbytes,
                        packets_per_s=rate,
                    )
                )
                obs = _obs.session()
                if obs is not None:
                    obs.probe("apps.telemetry.reports_exported")
                    obs.instant("heavy-hitter", now, track="apps/telemetry",
                                packets_per_s=rate)
            stats.last_packets = packets
            stats.last_bytes = nbytes
            if not retire:
                record.ref_flag = False
            else:
                # Idle for a full interval: retire the flow state and
                # return its counter memory.
                table.delete_nowait(record.key)
                pfe.memory.free(stats.counter.addr,
                                PacketByteCounter.SIZE)
                self.flows_retired += 1


# ---------------------------------------------------------------------------
# The chain-compiler NF
# ---------------------------------------------------------------------------


@dataclass
class _FlowEntry:
    """Semantic per-flow state of :class:`TelemetryNF`."""

    packets: int = 0
    bytes: int = 0
    last_packets: int = 0
    seen_this_epoch: bool = False


class TelemetryNF(NF):
    """Backend-independent telemetry: per-flow counts in packet time.

    Heavy hitters are flows whose packet delta within one epoch reached
    ``heavy_hitter_packets_per_epoch``; flows silent for a whole epoch
    are retired.  Purely trace-determined, so exports are identical on
    every placement.
    """

    name = "telemetry"
    microcode_program = "nf_telemetry_parse"
    #: Counter RMW issue + flow bookkeeping beyond the parse front-end.
    trio_body_instructions = 6
    #: Software per-flow accounting on a host worker.
    host_ns_per_packet = 300.0

    def __init__(
        self,
        heavy_hitter_packets_per_epoch: int = 128,
        max_flows: int = 8192,
        scan_threads: int = 8,
        epoch_packets: int = 256,
    ) -> None:
        if heavy_hitter_packets_per_epoch < 1:
            raise ValueError(
                "heavy-hitter threshold must be >= 1: "
                f"{heavy_hitter_packets_per_epoch}"
            )
        if epoch_packets < 1:
            raise ValueError(f"epoch must be >= 1 packets: {epoch_packets}")
        self.heavy_hitter_packets_per_epoch = heavy_hitter_packets_per_epoch
        self.max_flows = max_flows
        self.scan_threads = scan_threads
        self.epoch_packets = epoch_packets

    # -- declarations ---------------------------------------------------

    def state_resources(self) -> Tuple[StateSpec, ...]:
        return (
            StateSpec(STATE_HASH_ENTRIES, "flows", entries=self.max_flows,
                      width_bits=64),
            StateSpec(STATE_COUNTER, "flow_counters", entries=self.max_flows,
                      width_bits=64),
            StateSpec(STATE_TIMER_THREADS, "sweep",
                      threads=self.scan_threads),
        )

    # -- semantics ------------------------------------------------------

    def process(self, state: NFState, pkt: PacketView) -> str:
        state.count("packets_total")
        entry = state.table.get(pkt.flow)
        if entry is None:
            if len(state.table) >= self.max_flows:
                # Table full: forward uncounted rather than stall traffic.
                state.count("flows_dropped_capacity")
                return VERDICT_FORWARD
            entry = state.table[pkt.flow] = _FlowEntry()
            state.count("flows_tracked")
        entry.packets += 1
        entry.bytes += pkt.length
        entry.seen_this_epoch = True
        return VERDICT_FORWARD

    def on_epoch(self, state: NFState, epoch_index: int) -> None:
        for flow, entry in list(state.table.items()):
            delta = entry.packets - entry.last_packets
            export, retire = sweep_decision(
                delta,
                self.heavy_hitter_packets_per_epoch,
                entry.seen_this_epoch,
            )
            if export:
                state.count("reports_exported")
                state.exports.append(
                    ("hh", epoch_index, flow, entry.packets, entry.bytes)
                )
            entry.last_packets = entry.packets
            entry.seen_this_epoch = False
            if retire:
                del state.table[flow]
                state.count("flows_retired")
