"""The NF chain compiler: parse, check feasibility, price, place.

A chain spec is an arrow expression over registered NF names::

    firewall -> telemetry -> aggregate

:func:`compile_chain` resolves each name in the registry and builds the
per-(NF, backend) feasibility matrix against real budgets:

* **Trio** — the NF's Microcode parse front-end must exist in
  :data:`repro.microcode.programs.BUILTIN_PROGRAMS` and pass static
  analysis clean with a bounded worst-case path under the generation's
  LMEM budget (:func:`repro.microcode.analysis.analyze_program`); its
  declared hash entries must fit the hash block, its timer threads the
  hardware-timer budget (jointly, across every Trio-placed NF).
* **PISA** — the NF's register arrays are installed on a scratch
  :class:`repro.pisa.pipeline.PisaPipeline` (one register per stage,
  the one-RMW-per-stage idiom); width, stage-count, and per-stage SRAM
  violations surface as the pipeline's own :class:`PipelineError`.
  Co-located NFs must compose stage-disjointly (``install_many``).
* **Host** — software workers are unconstrained (only slow).

:func:`CompiledChain.placement_costs` prices a placement with the
models in :mod:`repro.nf.cost`; the searches in
:mod:`repro.nf.placement` minimise it.  ``python -m repro.nf.chain``
is the single-chain CLI (compile, report, execute, validate).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.microcode.analysis import analyze_program
from repro.microcode.programs import BUILTIN_PROGRAMS
from repro.nf.base import NF, NFError
from repro.nf.cost import (
    BACKENDS,
    BACKEND_HOST,
    BACKEND_PISA,
    BACKEND_TRIO,
    CROSSING_LATENCY_S,
    CostModel,
    NFCost,
    default_models,
)
from repro.nf.registry import get_nf
from repro.pisa.pipeline import P4Program, PipelineError, PisaPipeline
from repro.sim import Environment
from repro.trio.chipset import GENERATIONS, TrioChipsetConfig

__all__ = [
    "ChainError",
    "CompiledChain",
    "Feasibility",
    "NFP4Program",
    "PlacementCost",
    "compile_chain",
    "main",
    "parse_chain",
]

#: Hash-block entry budget on one PFE (records across all applications).
TRIO_HASH_ENTRIES_BUDGET = 1 << 20


class ChainError(NFError):
    """A chain spec failed to parse, resolve, compile, or place."""


def parse_chain(text: str) -> Tuple[str, ...]:
    """Parse ``"a -> b -> c"`` into NF names (lowercased, in order)."""
    if "->" not in text and not text.strip():
        raise ChainError("empty chain spec")
    names = [part.strip().lower() for part in text.split("->")]
    if any(not name for name in names):
        raise ChainError(
            f"chain spec {text!r} has an empty element; expected "
            "'nf -> nf -> ...'"
        )
    return tuple(names)


@dataclass(frozen=True)
class Feasibility:
    """Verdict for one (NF, backend) cell of the matrix."""

    ok: bool
    reason: str = ""


@dataclass(frozen=True)
class PlacementCost:
    """Modeled cost of one full placement."""

    placement: Tuple[str, ...]
    nf_costs: Tuple[NFCost, ...]
    crossings: int

    @property
    def per_packet_s(self) -> float:
        return (
            sum(cost.per_packet_s for cost in self.nf_costs)
            + self.crossings * CROSSING_LATENCY_S
        )

    @property
    def per_packet_ns(self) -> float:
        return self.per_packet_s * 1e9


class NFP4Program(P4Program):
    """The PISA realisation of one NF's declared state.

    One register array per declared resource, one stage per array
    starting at ``stage_offset`` — the standard one-RMW-per-stage
    layout.  Only the declaration matters here: the chain executor runs
    NF semantics directly, and the pipeline's install-time validation
    is the feasibility check.
    """

    def __init__(self, nf: NF, stage_offset: int = 0):
        super().__init__()
        self.name = f"nf:{nf.name}"
        self.nf = nf
        self.stage_offset = stage_offset

    def on_install(self, pipeline: PisaPipeline) -> None:
        for slot, (name, size, width_bits) in enumerate(self.nf.pisa_registers()):
            self.register(name, self.stage_offset + slot, size, width_bits)


def _scratch_pipeline(num_stages: int) -> PisaPipeline:
    """A throwaway pipeline for install-time validation only."""
    env = Environment(initial_time=0.0, seed=0)
    return PisaPipeline(env, "nf-feasibility", num_stages=num_stages)


@dataclass
class CompiledChain:
    """A resolved, feasibility-checked chain ready for placement."""

    spec: str
    names: Tuple[str, ...]
    nfs: Tuple[NF, ...]
    trio_config: TrioChipsetConfig
    num_pisa_stages: int
    #: (nf name, backend) -> verdict.
    feasibility: Dict[Tuple[str, str], Feasibility]
    #: nf name -> statically analysed parse-instruction bound on Trio.
    parse_bounds: Dict[str, float]
    #: Non-fatal compile diagnostics (``--werror`` promotes these).
    warnings: List[str]
    models: Tuple[CostModel, ...]

    def feasible_backends(self, name: str) -> Tuple[str, ...]:
        """Backends where NF ``name`` is individually feasible."""
        return tuple(
            backend for backend in BACKENDS
            if self.feasibility[(name, backend)].ok
        )

    def validate_placement(self, placement: Sequence[str]) -> List[str]:
        """All reasons ``placement`` is illegal (empty list = legal).

        Covers the per-NF matrix plus the joint constraints: Trio
        hardware timers and hash entries are shared by every Trio-placed
        NF, and PISA-placed NFs must co-install stage-disjointly on one
        pipeline.
        """
        problems: List[str] = []
        if len(placement) != len(self.nfs):
            return [
                f"placement names {len(placement)} backends for "
                f"{len(self.nfs)} NFs"
            ]
        for name, backend in zip(self.names, placement):
            if backend not in BACKENDS:
                problems.append(f"unknown backend {backend!r} for {name!r}")
                continue
            verdict = self.feasibility[(name, backend)]
            if not verdict.ok:
                problems.append(
                    f"{name!r} infeasible on {backend}: {verdict.reason}"
                )
        if problems:
            return problems
        trio_nfs = [
            nf for nf, backend in zip(self.nfs, placement)
            if backend == BACKEND_TRIO
        ]
        timers = sum(nf.timer_threads() for nf in trio_nfs)
        if timers > self.trio_config.num_hw_timers:
            problems.append(
                f"Trio placement needs {timers} timer threads, hardware "
                f"has {self.trio_config.num_hw_timers}"
            )
        entries = sum(nf.hash_entries() for nf in trio_nfs)
        if entries > TRIO_HASH_ENTRIES_BUDGET:
            problems.append(
                f"Trio placement needs {entries} hash entries, budget is "
                f"{TRIO_HASH_ENTRIES_BUDGET}"
            )
        pisa_nfs = [
            nf for nf, backend in zip(self.nfs, placement)
            if backend == BACKEND_PISA
        ]
        if pisa_nfs:
            programs: List[P4Program] = []
            offset = 0
            for nf in pisa_nfs:
                programs.append(NFP4Program(nf, stage_offset=offset))
                offset += len(nf.pisa_registers())
            try:
                _scratch_pipeline(self.num_pisa_stages).install_many(programs)
            except PipelineError as exc:
                problems.append(f"PISA co-installation failed: {exc}")
        return problems

    def placement_costs(self, placement: Sequence[str]) -> PlacementCost:
        """Price a placement (legal or not) with the shipped models."""
        by_backend = {model.backend: model for model in self.models}
        nf_costs: List[NFCost] = []
        for name, nf, backend in zip(self.names, self.nfs, placement):
            model = by_backend[backend]
            nf_costs.append(model.cost(nf, self.parse_bounds.get(name, 0.0)))
        crossings = sum(
            1 for left, right in zip(placement, placement[1:])
            if left != right
        )
        return PlacementCost(
            placement=tuple(placement),
            nf_costs=tuple(nf_costs),
            crossings=crossings,
        )


def _check_trio(nf: NF, config: TrioChipsetConfig,
                warnings: List[str]) -> Tuple[Feasibility, float]:
    """Trio feasibility: Microcode analysis + per-NF hardware budgets."""
    parse_bound = 0.0
    if nf.microcode_program is not None:
        program = BUILTIN_PROGRAMS.get(nf.microcode_program)
        if program is None:
            return Feasibility(
                False,
                f"Microcode program {nf.microcode_program!r} is not in "
                "BUILTIN_PROGRAMS",
            ), 0.0
        try:
            compiled = program.compile()
        except Exception as exc:  # compiler errors carry the reason
            return Feasibility(
                False, f"{nf.microcode_program!r} failed to compile: {exc}"
            ), 0.0
        report = analyze_program(
            compiled, lmem_bytes=config.lmem_bytes,
            filename=f"builtin:{program.name}",
        )
        if not report.clean:
            finding = report.findings[0]
            return Feasibility(
                False,
                f"{nf.microcode_program!r} analysis: {finding.message}",
            ), 0.0
        budget = report.entry_budget()
        if not budget.bounded:
            return Feasibility(
                False,
                f"{nf.microcode_program!r} worst-case path is unbounded",
            ), 0.0
        parse_bound = budget.instructions
    else:
        warnings.append(
            f"NF {nf.name!r} declares no Microcode parse front-end; Trio "
            "cost covers its body charge only"
        )
    if nf.hash_entries() > TRIO_HASH_ENTRIES_BUDGET:
        return Feasibility(
            False,
            f"declares {nf.hash_entries()} hash entries, hash block "
            f"budget is {TRIO_HASH_ENTRIES_BUDGET}",
        ), parse_bound
    if nf.timer_threads() > config.num_hw_timers:
        return Feasibility(
            False,
            f"declares {nf.timer_threads()} timer threads, hardware has "
            f"{config.num_hw_timers}",
        ), parse_bound
    return Feasibility(True), parse_bound


def _check_pisa(nf: NF, num_stages: int) -> Feasibility:
    """PISA feasibility: install the NF's registers on a scratch pipeline."""
    registers = nf.pisa_registers()
    if len(registers) > num_stages:
        return Feasibility(
            False,
            f"needs {len(registers)} stages (one register per stage), "
            f"pipeline has {num_stages}",
        )
    try:
        _scratch_pipeline(num_stages).install(NFP4Program(nf))
    except PipelineError as exc:
        return Feasibility(False, str(exc))
    return Feasibility(True)


def compile_chain(
    spec: str,
    trio_config: Optional[TrioChipsetConfig] = None,
    num_pisa_stages: int = 12,
    models: Optional[Tuple[CostModel, ...]] = None,
) -> CompiledChain:
    """Resolve, feasibility-check, and price a chain spec."""
    names = parse_chain(spec)
    try:
        nfs = tuple(get_nf(name) for name in names)
    except Exception as exc:
        raise ChainError(str(exc)) from None
    config = trio_config if trio_config is not None else GENERATIONS[5]
    warnings: List[str] = []
    feasibility: Dict[Tuple[str, str], Feasibility] = {}
    parse_bounds: Dict[str, float] = {}
    for name, nf in zip(names, nfs):
        trio_verdict, parse_bound = _check_trio(nf, config, warnings)
        feasibility[(name, BACKEND_TRIO)] = trio_verdict
        parse_bounds[name] = parse_bound
        feasibility[(name, BACKEND_PISA)] = _check_pisa(nf, num_pisa_stages)
        feasibility[(name, BACKEND_HOST)] = Feasibility(True)
        if not any(feasibility[(name, backend)].ok for backend in BACKENDS):
            raise ChainError(f"NF {name!r} is feasible on no backend")
    return CompiledChain(
        spec=" -> ".join(names),
        names=names,
        nfs=nfs,
        trio_config=config,
        num_pisa_stages=num_pisa_stages,
        feasibility=feasibility,
        parse_bounds=parse_bounds,
        warnings=warnings,
        models=models if models is not None else default_models(config),
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


def _render_matrix(compiled: CompiledChain) -> str:
    lines = [f"chain: {compiled.spec}"]
    header = f"  {'nf':<12}" + "".join(f"{b:>10}" for b in BACKENDS)
    lines.append(header)
    for name in compiled.names:
        cells = []
        for backend in BACKENDS:
            verdict = compiled.feasibility[(name, backend)]
            cells.append(f"{'ok' if verdict.ok else 'NO':>10}")
        lines.append(f"  {name:<12}" + "".join(cells))
        for backend in BACKENDS:
            verdict = compiled.feasibility[(name, backend)]
            if not verdict.ok:
                lines.append(f"    {backend}: {verdict.reason}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.nf.exec import generate_trace, run_chain
    from repro.nf.placement import enumerate_placements, greedy_place

    parser = argparse.ArgumentParser(
        prog="python -m repro.nf.chain",
        description="Compile, place, and execute one NF chain.",
    )
    parser.add_argument(
        "spec", nargs="?", default="firewall -> telemetry -> aggregate",
        help="chain spec, e.g. 'firewall -> telemetry -> aggregate'",
    )
    parser.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="place every NF on this backend",
    )
    parser.add_argument(
        "--placement", default=None,
        help="comma-separated backend per NF, e.g. trio,pisa,host",
    )
    parser.add_argument("--packets", type=int, default=4096,
                        help="trace length (default 4096)")
    parser.add_argument("--seed", type=int, default=0,
                        help="trace seed (default 0)")
    parser.add_argument(
        "--validate-all", action="store_true",
        help="execute every legal placement and require identical results",
    )
    parser.add_argument(
        "--werror", action="store_true",
        help="treat compile warnings as errors (exit 2)",
    )
    args = parser.parse_args(argv)

    try:
        compiled = compile_chain(args.spec)
    except ChainError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(_render_matrix(compiled))
    for warning in compiled.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    if args.werror and compiled.warnings:
        return 2

    if args.placement is not None:
        placement: Tuple[str, ...] = tuple(
            part.strip().lower() for part in args.placement.split(",")
        )
    elif args.backend is not None:
        placement = tuple(args.backend for __ in compiled.nfs)
    else:
        placement = greedy_place(compiled)
    problems = compiled.validate_placement(placement)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    cost = compiled.placement_costs(placement)
    print(f"placement: {','.join(placement)}  "
          f"({cost.per_packet_ns:.1f} ns/packet, "
          f"{cost.crossings} crossing(s))")

    trace = generate_trace(args.packets, seed=args.seed)
    result = run_chain(compiled.spec, compiled.nfs, placement, trace,
                       per_packet_s=cost.per_packet_s)
    forwarded = sum(t[0] for t in result.flow_verdicts.values())
    dropped = sum(t[1] for t in result.flow_verdicts.values())
    consumed = sum(t[2] for t in result.flow_verdicts.values())
    print(f"executed {result.packets} packets: {forwarded} forwarded, "
          f"{dropped} dropped, {consumed} consumed; "
          f"fingerprint {result.fingerprint()[:16]}")

    if args.validate_all:
        legal = enumerate_placements(compiled)
        fingerprints = set()
        for option in legal:
            res = run_chain(compiled.spec, compiled.nfs, option.placement,
                            trace, per_packet_s=option.per_packet_s)
            fingerprints.add(res.fingerprint())
        print(f"validated {len(legal)} legal placements: "
              f"{len(fingerprints)} distinct fingerprint(s)")
        if len(fingerprints) != 1:
            print("error: placements disagree on results", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
