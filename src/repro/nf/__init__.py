"""repro.nf — network functions, chains, and cost-driven placement.

ROADMAP item 4: the Lemur-style multi-tenancy layer (§5 of the paper
positions Trio alongside PISA switches and host cores for exactly this
kind of split deployment).  A :class:`~repro.nf.base.NF` declares its
per-packet handler and state resources once; :mod:`repro.nf.chain`
parses ``"firewall -> telemetry -> aggregate"`` specs, checks per-NF
feasibility against each backend's real budgets (Trio Microcode
analysis, PISA stage SRAM, host workers), prices the feasible options
with :mod:`repro.nf.cost`, and emits an executable placement whose
packet-level results are bit-identical however the chain is split.

The default registry mirrors :mod:`repro.collectives`: the three
shipped NFs register themselves at import, and tests register variants
via :func:`register_nf` / :func:`unregister_nf`.
"""

from repro.nf.base import (
    NF,
    NFError,
    NFState,
    PacketView,
    STATE_COUNTER,
    STATE_HASH_ENTRIES,
    STATE_REGISTER_ARRAY,
    STATE_TIMER_THREADS,
    StateSpec,
    VERDICT_CONSUME,
    VERDICT_DROP,
    VERDICT_FORWARD,
)
from repro.nf.registry import (
    UnknownNFError,
    available_nfs,
    get_nf,
    register_nf,
    unregister_nf,
)
from repro.nf.aggregate import AggregateNF
from repro.nf.firewall import DDoSMitigator, FirewallNF, StrikePolicy
from repro.nf.telemetry import TelemetryMonitor, TelemetryNF, sweep_decision
from repro.nf.chain import (
    ChainError,
    CompiledChain,
    Feasibility,
    PlacementCost,
    compile_chain,
    parse_chain,
)
from repro.nf.cost import (
    BACKENDS,
    BACKEND_HOST,
    BACKEND_PISA,
    BACKEND_TRIO,
    CROSSING_LATENCY_S,
    HostCostModel,
    NFCost,
    PisaCostModel,
    TrioCostModel,
    default_models,
)
from repro.nf.exec import (
    ChainRunResult,
    generate_trace,
    packet_view,
    run_chain,
)
from repro.nf.placement import enumerate_placements, greedy_place

__all__ = [
    "AggregateNF",
    "BACKENDS",
    "BACKEND_HOST",
    "BACKEND_PISA",
    "BACKEND_TRIO",
    "CROSSING_LATENCY_S",
    "ChainError",
    "ChainRunResult",
    "CompiledChain",
    "Feasibility",
    "HostCostModel",
    "NFCost",
    "PisaCostModel",
    "PlacementCost",
    "TrioCostModel",
    "compile_chain",
    "default_models",
    "enumerate_placements",
    "generate_trace",
    "greedy_place",
    "packet_view",
    "parse_chain",
    "run_chain",
    "DDoSMitigator",
    "FirewallNF",
    "NF",
    "NFError",
    "NFState",
    "PacketView",
    "STATE_COUNTER",
    "STATE_HASH_ENTRIES",
    "STATE_REGISTER_ARRAY",
    "STATE_TIMER_THREADS",
    "StateSpec",
    "StrikePolicy",
    "TelemetryMonitor",
    "TelemetryNF",
    "UnknownNFError",
    "VERDICT_CONSUME",
    "VERDICT_DROP",
    "VERDICT_FORWARD",
    "available_nfs",
    "get_nf",
    "register_nf",
    "sweep_decision",
    "unregister_nf",
]

#: The shipped NFs, registered at import so chain specs resolve by name.
for _nf in (FirewallNF(), TelemetryNF(), AggregateNF()):
    if _nf.name not in available_nfs():
        register_nf(_nf)
del _nf
