"""``python -m repro.nf`` — the NF chain CLI (see repro.nf.chain)."""

import sys

from repro.nf.chain import main

if __name__ == "__main__":
    sys.exit(main())
