"""The firewall NF: per-source policing with strike-based blocklisting.

This module owns both realisations of the §7 DDoS defence:

* :class:`DDoSMitigator` — the Trio data-path application (policers in
  the Shared Memory System, timer-thread reviews), moved here from
  ``repro.apps.security`` (which is now a thin shim over this module);
* :class:`FirewallNF` — the backend-independent network function used
  by the chain compiler, whose periodic review runs in packet-count
  epochs so verdicts are identical on every placement.

Both share :class:`StrikePolicy`, the temporary-vs-permanent offender
state machine §5 sketches: offenders collect strikes and are blocked at
a threshold; blocked sources whose REF flag stays clear for several
consecutive review intervals are rehabilitated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Protocol, Set, Tuple

from repro.net.headers import HeaderError, source_key
from repro.nf.base import (
    NF,
    NFState,
    PacketView,
    STATE_COUNTER,
    STATE_HASH_ENTRIES,
    STATE_TIMER_THREADS,
    StateSpec,
    VERDICT_DROP,
    VERDICT_FORWARD,
)
from repro.obs import bus as _obs
from repro.trio.counters import PacketByteCounter, Policer
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext

__all__ = [
    "BlockEvent",
    "DDoSMitigator",
    "FirewallNF",
    "SourceState",
    "StrikePolicy",
]


class StrikeEntry(Protocol):
    """What :meth:`StrikePolicy.review` needs from a per-source record."""

    strikes: int
    blocked: bool
    quiet_intervals: int


@dataclass(frozen=True)
class StrikePolicy:
    """The shared block/rehabilitate state machine (§5).

    Operates on any entry exposing ``strikes``, ``blocked``, and
    ``quiet_intervals`` — the Trio application's hash-table values and
    the NF's semantic table entries both qualify, which is what keeps
    the two data paths' blocklist decisions in lockstep.
    """

    strike_threshold: int = 3
    rehab_quiet_intervals: int = 3

    def __post_init__(self) -> None:
        if self.strike_threshold < 1:
            raise ValueError(
                f"strike threshold must be >= 1: {self.strike_threshold}"
            )
        if self.rehab_quiet_intervals < 1:
            raise ValueError(
                f"rehab interval count must be >= 1: "
                f"{self.rehab_quiet_intervals}"
            )

    def review(self, entry: StrikeEntry, offended: bool,
               ref_seen: bool) -> Optional[str]:
        """One review-interval transition for one source.

        Mutates ``entry`` and returns ``"block"``, ``"unblock"``, or
        ``None``.  ``offended`` — the source exceeded its budget since
        the last review; ``ref_seen`` — its REF flag was set (any
        traffic at all this interval).
        """
        if offended:
            entry.strikes += 1
            if not entry.blocked and entry.strikes >= self.strike_threshold:
                entry.blocked = True
                return "block"
            return None
        if ref_seen:
            entry.quiet_intervals = 0
            return None
        entry.quiet_intervals += 1
        if (entry.blocked
                and entry.quiet_intervals >= self.rehab_quiet_intervals):
            entry.blocked = False
            entry.strikes = 0
            entry.quiet_intervals = 0
            return "unblock"
        return None


@dataclass
class SourceState:
    """Per-source defence state (hash-table value keyed by source IP)."""

    policer: Policer
    strikes: int = 0
    blocked: bool = False
    first_seen: float = 0.0
    #: Consecutive review intervals with no traffic from this source.
    quiet_intervals: int = 0


@dataclass
class BlockEvent:
    """One blocklist decision, for the operator's audit trail."""

    time: float
    source_ip: int
    strikes: int
    action: str  # "block" or "unblock"


class DDoSMitigator(TrioApplication):
    """Per-source rate policing with timer-thread blocklist management."""

    name = "ddos-mitigator"

    def __init__(
        self,
        allowed_pps: float = 100_000.0,
        packet_size_hint: int = 512,
        burst_packets: int = 64,
        strike_threshold: int = 3,
        review_threads: int = 4,
        review_period_s: float = 1e-3,
        max_sources: int = 100_000,
        rehab_quiet_intervals: int = 3,
    ) -> None:
        """``allowed_pps`` is the per-source sustained packet budget;
        sources that keep exceeding it collect strikes at each review and
        are blocked after ``strike_threshold`` strikes.  A blocked source
        is rehabilitated after ``rehab_quiet_intervals`` consecutive
        review intervals with no traffic at all (its REF flag stayed
        clear) — the temporary-vs-permanent distinction of §5."""
        self.policy = StrikePolicy(
            strike_threshold=strike_threshold,
            rehab_quiet_intervals=rehab_quiet_intervals,
        )
        self.allowed_pps = allowed_pps
        self.packet_size_hint = packet_size_hint
        self.burst_packets = burst_packets
        self.strike_threshold = strike_threshold
        self.review_threads = review_threads
        self.review_period_s = review_period_s
        self.max_sources = max_sources
        self.rehab_quiet_intervals = rehab_quiet_intervals
        self.events: List[BlockEvent] = []
        self.packets_blocked = 0
        self.packets_policed = 0
        self.pfe: Optional[PFE] = None
        #: Sources that exceeded their policer since the last review.
        self._offenders: Set[int] = set()

    @property
    def _installed(self) -> PFE:
        pfe = self.pfe
        if pfe is None:
            raise RuntimeError("application is not installed on a PFE")
        return pfe

    def on_install(self, pfe: PFE) -> None:
        self.pfe = pfe
        self.blocked_counter = PacketByteCounter(pfe.memory)
        if _obs.enabled():
            _obs.register_collector(self._obs_collect)
        pfe.timers.launch_periodic(
            name="ddos-review",
            num_threads=self.review_threads,
            period_s=self.review_period_s,
            callback=self._review,
        )

    def _obs_collect(self, registry: Any) -> None:
        """Export the mitigator's counters (runs once at finalize)."""
        packets = registry.counter(
            "apps.security.packets", "packets seen by the defence",
            ("outcome",))
        packets.inc(self.packets_blocked, outcome="blocked")
        packets.inc(self.packets_policed, outcome="policed")
        registry.gauge(
            "apps.security.blocked_sources",
            "sources on the blocklist at finalize"
        ).set(len(self.blocked_sources))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def handle_packet(self, tctx: ThreadContext,
                      pctx: PacketContext) -> Generator[Any, Any, None]:
        yield from tctx.execute(6)  # parse up to L3
        try:
            source = source_key(pctx.packet)
        except HeaderError:
            pctx.forward()
            return
        pfe = self._installed
        record = yield from tctx.hash_lookup(("src", source))
        if record is None:
            if len(pfe.hash_table) >= self.max_sources:
                pctx.forward()
                return
            state = SourceState(
                policer=Policer(
                    pfe.env,
                    pfe.memory,
                    rate_bps=self.allowed_pps * self.packet_size_hint * 8,
                    burst_bytes=self.burst_packets * self.packet_size_hint,
                ),
                first_seen=pfe.env.now,
            )
            record, __ = yield from tctx.hash_insert_if_absent(
                ("src", source), state
            )
        state = record.value

        if state.blocked:
            # First-instruction drop: no further cycles for attack traffic.
            self.packets_blocked += 1
            yield from self.blocked_counter.increment(pctx.length)
            pctx.drop()
            return

        conforming = yield from state.policer.police(pctx.length)
        self.packets_policed += 1
        if not conforming:
            self._offenders.add(source)
            pctx.drop()
            return
        pctx.forward()

    # ------------------------------------------------------------------
    # Timer threads: strike review and rehabilitation
    # ------------------------------------------------------------------

    def _review(self, tctx: ThreadContext,
                thread_index: int) -> Generator[Any, Any, None]:
        pfe = self._installed
        records = yield from pfe.hash_table.scan_segment(
            thread_index % self.review_threads, self.review_threads
        )
        now = pfe.env.now
        for record in records:
            yield from tctx.execute(3)
            state = record.value
            if not isinstance(state, SourceState):
                continue
            source = record.key[1]
            offended = source in self._offenders
            if offended:
                self._offenders.discard(source)
            ref_seen = bool(record.ref_flag)
            if ref_seen and not offended:
                # The hardware clears the REF flag as it scans (§5); an
                # offender's interval is judged by the policer alone, so
                # its flag survives until a quiet interval reads it.
                record.ref_flag = False
            action = self.policy.review(state, offended, ref_seen)
            if action == "block":
                self.events.append(
                    BlockEvent(time=now, source_ip=source,
                               strikes=state.strikes, action="block")
                )
                self._obs_block_event(now, source, "block")
            elif action == "unblock":
                self.events.append(
                    BlockEvent(time=now, source_ip=source,
                               strikes=0, action="unblock")
                )
                self._obs_block_event(now, source, "unblock")

    @staticmethod
    def _obs_block_event(now: float, source: int, action: str) -> None:
        obs = _obs.session()
        if obs is not None:
            obs.probe("apps.security.block_events", action=action)
            obs.instant(f"{action} {source:#010x}", now,
                        track="apps/security")

    @property
    def blocked_sources(self) -> List[int]:
        """Currently blocked source IPs (control-plane view)."""
        return sorted(
            record.key[1]
            for record in self._installed.hash_table.all_records()
            if isinstance(record.value, SourceState) and record.value.blocked
        )


# ---------------------------------------------------------------------------
# The chain-compiler NF
# ---------------------------------------------------------------------------


@dataclass
class _SourceEntry:
    """Semantic per-source state of :class:`FirewallNF`."""

    packets_this_epoch: int = 0
    seen_this_epoch: bool = False
    strikes: int = 0
    blocked: bool = False
    quiet_intervals: int = 0


class FirewallNF(NF):
    """Backend-independent firewall: per-source budgets in packet time.

    The per-epoch packet budget plays the policer's role and the epoch
    cadence the review timer's, so the verdict stream is a pure function
    of the packet trace — identical on Trio, PISA, and host placements.
    """

    name = "firewall"
    microcode_program = "nf_firewall_parse"
    #: Policer check + blocklist branch, ballpark of the Trio app's
    #: per-packet body beyond the parse front-end.
    trio_body_instructions = 8
    #: Software policing on a host worker: parse + dict ops + policy,
    #: slower than either ASIC path.
    host_ns_per_packet = 350.0

    def __init__(
        self,
        allowed_packets_per_epoch: int = 16,
        strike_threshold: int = 3,
        rehab_quiet_epochs: int = 3,
        max_sources: int = 4096,
        review_threads: int = 4,
        epoch_packets: int = 256,
    ) -> None:
        if allowed_packets_per_epoch < 1:
            raise ValueError(
                f"per-epoch budget must be >= 1: {allowed_packets_per_epoch}"
            )
        if epoch_packets < 1:
            raise ValueError(f"epoch must be >= 1 packets: {epoch_packets}")
        self.policy = StrikePolicy(
            strike_threshold=strike_threshold,
            rehab_quiet_intervals=rehab_quiet_epochs,
        )
        self.allowed_packets_per_epoch = allowed_packets_per_epoch
        self.max_sources = max_sources
        self.review_threads = review_threads
        self.epoch_packets = epoch_packets

    # -- declarations ---------------------------------------------------

    def state_resources(self) -> Tuple[StateSpec, ...]:
        return (
            StateSpec(STATE_HASH_ENTRIES, "sources", entries=self.max_sources,
                      width_bits=64),
            StateSpec(STATE_COUNTER, "blocked", entries=1, width_bits=64),
            StateSpec(STATE_TIMER_THREADS, "review",
                      threads=self.review_threads),
        )

    # -- semantics ------------------------------------------------------

    def process(self, state: NFState, pkt: PacketView) -> str:
        state.count("packets_total")
        entry = state.table.get(pkt.src_ip)
        if entry is None:
            if len(state.table) >= self.max_sources:
                # Table full: forward unpoliced rather than stall traffic.
                state.count("packets_unpoliced")
                return VERDICT_FORWARD
            entry = state.table[pkt.src_ip] = _SourceEntry()
        if entry.blocked:
            # First-instruction drop, as on the Trio data path.
            entry.seen_this_epoch = True
            state.count("packets_blocked")
            return VERDICT_DROP
        entry.seen_this_epoch = True
        entry.packets_this_epoch += 1
        if entry.packets_this_epoch > self.allowed_packets_per_epoch:
            state.count("packets_dropped_policer")
            return VERDICT_DROP
        return VERDICT_FORWARD

    def on_epoch(self, state: NFState, epoch_index: int) -> None:
        for source, entry in list(state.table.items()):
            offended = (
                entry.packets_this_epoch > self.allowed_packets_per_epoch
            )
            action = self.policy.review(
                entry, offended, ref_seen=entry.seen_this_epoch
            )
            if action == "block":
                state.count("sources_blocked")
                state.exports.append(
                    ("block", epoch_index, source, entry.strikes)
                )
            elif action == "unblock":
                state.count("sources_unblocked")
                state.exports.append(("unblock", epoch_index, source, 0))
            entry.packets_this_epoch = 0
            entry.seen_this_epoch = False
