"""The network-function (NF) abstraction (ROADMAP item 4, Lemur-style).

An :class:`NF` is one packet-processing function — firewall, telemetry,
aggregation — written once against a *semantic* contract and compiled
onto any of the three data planes (Trio Microcode, PISA stages, host
workers) by :mod:`repro.nf.chain`.  The contract splits each NF into:

* a **typed per-packet handler** (:meth:`NF.process`) over a parsed
  :class:`PacketView` and the NF's :class:`NFState` — deterministic and
  backend-independent, so any legal placement of a chain produces
  bit-identical per-flow verdicts;
* **declared state resources** (:meth:`NF.state_resources`): hash-table
  entries, counters, register arrays, and timer threads.  Backends map
  these onto their native structures (Trio hash block + Packet/Byte
  Counters, PISA per-stage register arrays, host dictionaries) and the
  chain compiler checks them against each backend's budgets;
* **periodic work** (:meth:`NF.on_epoch`), expressed in *packet-count
  time* rather than wall-clock time.  On Trio this is a timer-thread
  sweep; on PISA it is a control-plane register scan; on a host worker
  it is an ordinary loop.  Counting packets instead of seconds is what
  makes the periodic behaviour placement-invariant.

Verdicts reuse the Trio packet fates (forward / drop / consume): a
chain stops traversing NFs at the first non-forward verdict, exactly as
a dropped packet never reaches later stages of a pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.net.headers import FlowKey

__all__ = [
    "NF",
    "NFError",
    "NFState",
    "PacketView",
    "StateSpec",
    "VERDICT_CONSUME",
    "VERDICT_DROP",
    "VERDICT_FORWARD",
    "STATE_COUNTER",
    "STATE_HASH_ENTRIES",
    "STATE_REGISTER_ARRAY",
    "STATE_TIMER_THREADS",
]

#: Packet fates, aligned with :mod:`repro.trio.ppe` ACTION_* semantics.
VERDICT_FORWARD = "forward"
VERDICT_DROP = "drop"
VERDICT_CONSUME = "consume"

#: State-resource kinds an NF may declare.
STATE_HASH_ENTRIES = "hash_entries"
STATE_COUNTER = "counter"
STATE_REGISTER_ARRAY = "register_array"
STATE_TIMER_THREADS = "timer_threads"

_STATE_KINDS = (
    STATE_HASH_ENTRIES,
    STATE_COUNTER,
    STATE_REGISTER_ARRAY,
    STATE_TIMER_THREADS,
)


class NFError(ValueError):
    """An NF declaration or chain specification is invalid."""


@dataclass(frozen=True)
class StateSpec:
    """One declared state resource.

    ``entries`` is the element count (hash records, counters, register
    slots); ``width_bits`` the per-element width for register arrays and
    counters; ``threads`` the timer-thread count for
    :data:`STATE_TIMER_THREADS` declarations.
    """

    kind: str
    name: str
    entries: int = 0
    width_bits: int = 32
    threads: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _STATE_KINDS:
            raise NFError(
                f"unknown state kind {self.kind!r}; expected one of "
                f"{', '.join(_STATE_KINDS)}"
            )
        if self.kind == STATE_TIMER_THREADS:
            if self.threads < 1:
                raise NFError(
                    f"timer-thread spec {self.name!r} needs threads >= 1"
                )
        elif self.entries < 1:
            raise NFError(f"state spec {self.name!r} needs entries >= 1")

    @property
    def sram_bits(self) -> int:
        """SRAM footprint of this resource in bits (0 for threads)."""
        if self.kind == STATE_TIMER_THREADS:
            return 0
        return self.entries * self.width_bits


@dataclass(frozen=True)
class PacketView:
    """The parsed, typed view of one packet handed to NF handlers.

    Built once per packet by the chain executor from the shared
    :func:`repro.net.headers.flow_key` codec, so every NF sees the same
    flow identity regardless of which backend it was placed on.
    ``index`` is the packet's position in the trace — the logical clock
    that :meth:`NF.on_epoch` cadences are measured against.
    """

    index: int
    flow: FlowKey
    length: int
    payload_len: int
    #: First payload word (big-endian), the gradient proxy for the
    #: aggregation NF; 0 for payloads shorter than 4 bytes.
    payload_word: int

    @property
    def src_ip(self) -> int:
        return self.flow[0]

    @property
    def dst_ip(self) -> int:
        return self.flow[1]

    @property
    def src_port(self) -> int:
        return self.flow[2]

    @property
    def dst_port(self) -> int:
        return self.flow[3]


class NFState:
    """Semantic state store for one NF instance during one chain run.

    The executor creates one per (NF, run); backends only influence the
    *cost* of touching it, never its contents — that invariance is what
    the placement-identity tests pin down.
    """

    def __init__(self) -> None:
        #: Keyed state records (the hash-table analogue).
        self.table: Dict[Any, Any] = {}
        #: Named monotonic counters (the Packet/Byte Counter analogue).
        self.counters: Dict[str, int] = {}
        #: Records exported by periodic work (heavy hitters, results...).
        self.exports: List[Tuple[Any, ...]] = []

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a named counter (created at 0 on first use)."""
        self.counters[name] = self.counters.get(name, 0) + delta


class NF:
    """Base class for network functions placeable by the chain compiler.

    Subclasses implement :meth:`process` (and usually :meth:`on_epoch`)
    and declare their state resources; the per-backend hooks below feed
    the cost models in :mod:`repro.nf.cost`:

    ``microcode_program``
        Name of this NF's Microcode parse front-end in
        :data:`repro.microcode.programs.BUILTIN_PROGRAMS`.  The Trio
        backend compiles and statically analyses it
        (:func:`repro.microcode.analysis.analyze_program`): the program
        must be clean and bounded, its worst-case instruction bound is
        the parse charge, and its LMEM/pointer checks are the Trio
        feasibility gate.
    ``trio_body_instructions``
        Per-packet instruction charge of the NF body beyond the parse
        front-end (hash math, policy checks).
    ``host_ns_per_packet``
        CPU cost of one packet on a host worker, nanoseconds.
    ``epoch_packets``
        Periodic-work cadence in packets.
    """

    name: str = "nf"
    epoch_packets: int = 256
    microcode_program: Optional[str] = None
    trio_body_instructions: int = 0
    host_ns_per_packet: float = 150.0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------

    def state_resources(self) -> Tuple[StateSpec, ...]:
        """Declared state resources; default none."""
        return ()

    def pisa_registers(self) -> Tuple[Tuple[str, int, int], ...]:
        """Register arrays the PISA backend must allocate.

        Returns ``(name, size, width_bits)`` triples, one per stage in
        declaration order.  The default derives them from
        :meth:`state_resources`: hash-table state becomes a hash-indexed
        register array, counters a counter array — the standard PISA
        realisation of keyed state.  Timer threads need no registers
        (their sweeps run from the control plane on PISA).
        """
        registers: List[Tuple[str, int, int]] = []
        for spec in self.state_resources():
            if spec.kind == STATE_TIMER_THREADS:
                continue
            width = 64 if spec.kind == STATE_HASH_ENTRIES else spec.width_bits
            registers.append((f"{self.name}.{spec.name}", spec.entries, width))
        return tuple(registers)

    def timer_threads(self) -> int:
        """Total declared timer threads (Trio hardware-timer budget)."""
        return sum(
            spec.threads
            for spec in self.state_resources()
            if spec.kind == STATE_TIMER_THREADS
        )

    def hash_entries(self) -> int:
        """Total declared hash-table entries (Trio hash-block budget)."""
        return sum(
            spec.entries
            for spec in self.state_resources()
            if spec.kind == STATE_HASH_ENTRIES
        )

    def trio_state_ops_per_packet(self) -> Tuple[int, int]:
        """(hash XTXNs, memory/RMW XTXNs) charged per packet on Trio.

        Default: one hash lookup per declared hash resource and one RMW
        per declared counter resource — the dominant pattern of the
        shipped applications.
        """
        hash_ops = sum(
            1 for spec in self.state_resources()
            if spec.kind == STATE_HASH_ENTRIES
        )
        rmw_ops = sum(
            1 for spec in self.state_resources()
            if spec.kind == STATE_COUNTER
        )
        return hash_ops, rmw_ops

    def trio_instructions_per_packet(self, parse_bound: float) -> float:
        """Per-packet PPE instruction charge on Trio.

        ``parse_bound`` is the statically analysed worst-case bound of
        :attr:`microcode_program` (0 when the NF has none).
        """
        return parse_bound + float(self.trio_body_instructions)

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------

    def process(self, state: NFState, pkt: PacketView) -> str:
        """Handle one packet; returns a VERDICT_* string."""
        raise NotImplementedError

    def on_epoch(self, state: NFState, epoch_index: int) -> None:
        """Periodic work, every :attr:`epoch_packets` packets."""

    def counters(self, state: NFState) -> Dict[str, int]:
        """Counter snapshot for placement-identity validation."""
        return dict(state.counters)

    def exports(self, state: NFState) -> Tuple[Tuple[Any, ...], ...]:
        """Exported records for placement-identity validation."""
        return tuple(state.exports)

    def __repr__(self) -> str:
        return f"<NF {self.name}>"
