"""Synchronisation primitives built on the event kernel.

* :class:`Resource` — a counted resource with FIFO waiters, used to model
  exclusive engines (e.g. a read-modify-write engine port).
* :class:`Store` — an unbounded-or-bounded FIFO of items, used to model
  queues (dispatch queues, NIC rings, link buffers).
* :class:`PriorityStore` — a store whose ``get`` returns the smallest item.

All primitives hand out plain :class:`~repro.sim.core.Event` objects so
model code uses one uniform ``yield`` style.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Deque, List, Optional

from repro.sim.core import Environment, Event, SimulationError

__all__ = ["Resource", "Store", "PriorityStore"]


class Resource:
    """A resource with ``capacity`` slots and FIFO granting.

    Usage::

        req = resource.request()
        yield req
        ...          # critical section
        resource.release()
    """

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def acquire(self) -> Optional[Event]:
        """Fast-path request: grant without an event when a slot is free.

        Returns ``None`` on a synchronous grant (the caller holds a slot
        and proceeds without yielding), otherwise a pending request event
        to yield on.  Grant bookkeeping is identical to :meth:`request`,
        so the two may be mixed freely on one resource; the fast path
        skips one queue round-trip per uncontended acquisition.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return None
        event = Event(self.env)
        self._waiters.append(event)
        return event

    def release(self) -> None:
        """Release one held slot, granting it to the next waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching request()")
        if self._waiters:
            waiter = self._waiters.popleft()
            waiter.succeed()
        else:
            self._in_use -= 1


class Store:
    """FIFO item store with optional capacity.

    ``put`` is an event that fires when the item has been accepted;
    ``get`` is an event that fires with the next item.
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Event] = deque()  # events carrying pending items

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> List[Any]:
        """Snapshot of queued items (oldest first)."""
        return list(self._items)

    def put(self, item: Any) -> Event:
        """Offer ``item``; fires once the store has accepted it."""
        event = Event(self.env)
        event.item = item
        if self._getters:
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append(event)
        return event

    def put_nowait(self, item: Any) -> None:
        """Fire-and-forget :meth:`put` that never allocates an ack event.

        Semantically identical to ``put`` with the returned event discarded
        (the item is accepted now, or queued for acceptance when the store
        is at capacity); use it on hot paths where nobody waits for the
        acceptance.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
        else:
            event = Event(self.env)
            event.item = item
            self._putters.append(event)

    def get(self) -> Event:
        """Request the next item; fires with the item when available."""
        event = Event(self.env)
        if self._items:
            item = self._items.popleft()
            self._drain_putters()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Pop an item without waiting; returns None if empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._drain_putters()
        return item

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter = self._putters.popleft()
            self._items.append(putter.item)
            putter.succeed()


class PriorityStore(Store):
    """A :class:`Store` that yields the smallest item first.

    Items must be mutually orderable (tuples work well).
    """

    def __init__(self, env: Environment, capacity: Optional[int] = None):
        super().__init__(env, capacity)
        self._heap: List[Any] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def items(self) -> List[Any]:
        return sorted(self._heap)

    def put(self, item: Any) -> Event:
        event = Event(self.env)
        event.item = item
        if self._getters:
            # Even with waiters the heap may hold smaller items; push then pop.
            heapq.heappush(self._heap, item)
            getter = self._getters.popleft()
            getter.succeed(heapq.heappop(self._heap))
            event.succeed()
        elif self.capacity is None or len(self._heap) < self.capacity:
            heapq.heappush(self._heap, item)
            event.succeed()
        else:
            self._putters.append(event)
        return event

    def put_nowait(self, item: Any) -> None:
        if self._getters:
            heapq.heappush(self._heap, item)
            self._getters.popleft().succeed(heapq.heappop(self._heap))
        elif self.capacity is None or len(self._heap) < self.capacity:
            heapq.heappush(self._heap, item)
        else:
            event = Event(self.env)
            event.item = item
            self._putters.append(event)

    def get(self) -> Event:
        event = Event(self.env)
        if self._heap:
            event.succeed(heapq.heappop(self._heap))
            self._drain_putters()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        if not self._heap:
            return None
        item = heapq.heappop(self._heap)
        self._drain_putters()
        return item

    def _drain_putters(self) -> None:
        while self._putters and (
            self.capacity is None or len(self._heap) < self.capacity
        ):
            putter = self._putters.popleft()
            heapq.heappush(self._heap, putter.item)
            putter.succeed()
