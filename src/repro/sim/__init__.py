"""Discrete-event simulation kernel.

This package provides the event-driven foundation for every hardware and
network model in the reproduction: a priority-queue event loop
(:class:`Environment`), generator-based cooperative processes
(:class:`Process`), one-shot :class:`Event` objects, and the shared
synchronisation primitives (:class:`Resource`, :class:`Store`) used to model
contention for engines, links, and queues.

The kernel follows the classic process-interaction style (as popularised by
SimPy): model code is written as Python generator functions that ``yield``
events; the environment resumes each process when the event it waits on
fires.  Simulated time is a ``float`` whose unit is chosen by the model --
all Trio models in this repository use **seconds**.
"""

from repro.sim.core import (
    FLOW_LEVEL_PRIORITY,
    PACKET_LEVEL_PRIORITY,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
    default_seed,
    set_default_seed,
)
from repro.sim.resources import PriorityStore, Resource, Store

__all__ = [
    "Environment",
    "Event",
    "FLOW_LEVEL_PRIORITY",
    "Interrupt",
    "PACKET_LEVEL_PRIORITY",
    "PriorityStore",
    "Process",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
    "default_seed",
    "set_default_seed",
]
