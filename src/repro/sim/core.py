"""Core of the discrete-event simulation kernel.

The design is deliberately small and explicit:

* :class:`Environment` owns simulated time and a binary-heap event queue.
* :class:`Event` is a one-shot occurrence that callbacks can be attached to.
* :class:`Timeout` is an event that fires after a fixed delay.
* :class:`Process` wraps a generator; every value the generator yields must
  be an :class:`Event`, and the process resumes when that event fires.

Events carry a *value* (delivered as the result of the ``yield``) and may
also *fail* with an exception, which is re-raised inside the waiting
process.  Processes are themselves events that fire when the generator
returns, so processes can wait on each other directly.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
]

#: Sentinel stored in :attr:`Event._value` while the event is pending.
_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Processes wait on events by yielding them.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or its exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping each fired event to its value.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired: dict = {}
        if not self.events:
            self.succeed(self._fired)
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._fired[event] = event.value
        self.succeed(self._fired)


class AllOf(Event):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired: dict = {}
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed(self._fired)
            return
        for event in self.events:
            if event.processed:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._fired[event] = event.value
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._fired)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it fires (with the generator's return
    value) when the generator finishes, so ``yield some_process`` waits for
    completion.
    """

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off execution at the current simulation time.
        start = Event(env)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        env.schedule(start)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True  # never counts as an unhandled failure
        wakeup.callbacks.append(self._resume)
        self.env.schedule(wakeup, priority=0)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        self.env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.env._active_process = None
            self.fail(exc)
            return
        self.env._active_process = None

        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
            )
            return
        if next_event.env is not self.env:
            raise SimulationError(
                f"process {self.name!r} yielded an event from a different "
                "Environment"
            )
        if next_event.processed:
            # Already fired and processed: resume immediately (next tick).
            resume = Event(self.env)
            resume._ok = next_event._ok
            resume._value = next_event._value
            if not next_event._ok:
                resume._defused = True
            resume.callbacks.append(self._resume)
            self.env.schedule(resume)
        else:
            self._waiting_on = next_event
            next_event.callbacks.append(self._resume)

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """Owns simulated time and executes events in timestamp order.

    Ties are broken by insertion order so the simulation is deterministic.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    def schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Enqueue ``event`` to fire ``delay`` time units from now."""
        heapq.heappush(
            self._queue, (self._now + delay, priority, next(self._counter), event)
        )

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heapq.heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False) and not callbacks:
            # A failed event that nobody was waiting on: surface the error
            # rather than letting it pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be a number (run until that simulated time) or an
        :class:`Event` (run until it fires, returning its value).
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        while self._queue:
            if stop_event is not None and stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            if self.peek() > stop_time:
                self._now = stop_time
                return None
            self.step()

        if stop_event is not None:
            if stop_event.processed:
                if not stop_event.ok:
                    raise stop_event.value
                return stop_event.value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None
