"""Core of the discrete-event simulation kernel.

The design is deliberately small and explicit:

* :class:`Environment` owns simulated time and a binary-heap event queue.
* :class:`Event` is a one-shot occurrence that callbacks can be attached to.
* :class:`Timeout` is an event that fires after a fixed delay.
* :class:`Process` wraps a generator; every value the generator yields must
  be an :class:`Event`, and the process resumes when that event fires.

Events carry a *value* (delivered as the result of the ``yield``) and may
also *fail* with an exception, which is re-raised inside the waiting
process.  Processes are themselves events that fire when the generator
returns, so processes can wait on each other directly.

Fast path
---------

Every simulated packet burns through thousands of pure-delay waits
(``yield env.timeout(d)``), so the kernel provides an allocation-free hot
loop for that dominant case:

* All event classes use ``__slots__``.
* :meth:`Environment.delay` hands out pooled :class:`_Delay` timeouts from
  a free list; the event loop recycles them (object *and* callback list)
  as soon as their callbacks have run.  A ``delay()`` event is therefore
  only valid for the single ``yield`` that consumes it — model code must
  not retain it, compose it into ``AnyOf``/``AllOf``, or pass it to
  ``run(until=...)``.  :meth:`Environment.timeout` keeps the fully general
  (allocating) semantics.
* :class:`Process` reuses one internal *bounce* event for start-up and for
  resuming after a yield on an already-processed event, instead of
  allocating a fresh event each time.
* :meth:`Environment.run` inlines the step loop with local bindings.

The fast path is timing-equivalent to the general path: same timestamps,
same tie-breaking (schedule order), same failure semantics.
"""

from __future__ import annotations

import random
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

from repro.obs import bus as _obs

__all__ = [
    "Environment",
    "Event",
    "FLOW_LEVEL_PRIORITY",
    "Interrupt",
    "PACKET_LEVEL_PRIORITY",
    "Process",
    "SimulationError",
    "Timeout",
    "default_seed",
    "set_default_seed",
]

#: Sentinel stored in :attr:`Event._value` while the event is pending.
_PENDING = object()

# Level-aware scheduling priorities.  The queue orders same-timestamp
# events by (priority, insertion order): interrupts run first (0), the
# packet level and all ordinary events next (1), and the flow/fluid
# level last (2).  A flow-level re-solve scheduled for time T therefore
# observes every packet-level state change that lands at T — arrivals,
# escalated-segment completions — before it allocates rates, without the
# two levels needing to know about each other's event order.
PACKET_LEVEL_PRIORITY = 1
FLOW_LEVEL_PRIORITY = 2

#: Process-wide base seed adopted by environments constructed without an
#: explicit ``seed`` — how ``python -m repro.harness --seed N`` reaches
#: the many ``Environment()`` call sites inside the experiment drivers.
_DEFAULT_SEED: Optional[Any] = None


def set_default_seed(seed: Optional[Any]) -> None:
    """Set the base seed future ``Environment()`` instances adopt.

    ``None`` restores the default behaviour (streams keyed by their own
    per-component keys only).  Affects only environments created after
    the call.
    """
    global _DEFAULT_SEED
    _DEFAULT_SEED = seed


def default_seed() -> Optional[Any]:
    """The process-wide base seed (see :func:`set_default_seed`)."""
    return _DEFAULT_SEED


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel (e.g. yielding a non-event)."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies ``cause``, available as
    ``exc.cause`` in the interrupted process.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current simulation
    time.  Processes wait on events by yielding them.
    """

    # ``item`` is used by the Store primitives to carry the pending payload
    # of a blocked put(); it lives here because __slots__ forbids ad-hoc
    # attributes on subclass instances.
    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused", "item")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or its exception, if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Inlined env.schedule(self): succeed() is the hottest trigger path.
        env = self.env
        env._scheduled = seq = env._scheduled + 1
        heappush(env._queue, (env._now, 1, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every process waiting on the event.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` time units in the future."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class _Delay(Timeout):
    """Pooled pure-delay timeout handed out by :meth:`Environment.delay`.

    Expects exactly one short-lived waiter; the event loop recycles the
    instance (and its callback list) right after its callbacks run.
    """

    __slots__ = ()

    def __init__(self, env: "Environment"):
        # Bypass Timeout.__init__: fields are (re)initialised by
        # Environment.delay() on every checkout from the pool.
        Event.__init__(self, env)
        self.delay = 0.0
        self._ok = True


def _run_callback(event: "_Callback") -> None:
    event.fn(*event.args)


def _cancelled_callback(*_args: Any) -> None:
    """Target of a cancelled :class:`_Callback`: do nothing."""


class _Callback(Event):
    """Pre-triggered event that invokes ``fn(*args)`` when processed.

    Backs :meth:`Environment.call_later` / :meth:`Environment.call_at` —
    a fire-and-forget deferred call without the Process/generator/bounce
    machinery.  :meth:`cancel` turns the pending call into a no-op
    without heap surgery: the queue entry stays and is processed as an
    empty event, which keeps scheduling O(log n) and the
    ``scheduled_events`` fingerprint stable.
    """

    __slots__ = ("fn", "args")

    def __init__(self, env: "Environment", fn: Callable[..., Any],
                 args: Tuple[Any, ...]):
        Event.__init__(self, env)
        self._ok = True
        self._value = None
        self.fn = fn
        self.args = args
        self.callbacks = [_run_callback]

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self.fn is _cancelled_callback

    def cancel(self) -> None:
        """Suppress the pending call (idempotent).

        The event still pops off the queue at its scheduled time but
        invokes nothing.  Callers that would otherwise let a stale
        deferred call fire (the fluid engine's completion wake-ups, for
        example) cancel instead of scheduling a replacement plus an
        epoch guard.
        """
        if self.fn is not _cancelled_callback:
            self.fn = _cancelled_callback
            self.args = ()
            self.env._cancelled += 1


class AnyOf(Event):
    """Fires when the first of several events fires.

    The value is a dict mapping each fired event to its value.
    """

    __slots__ = ("events", "_fired")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired: dict = {}
        if not self.events:
            self.succeed(self._fired)
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired[event] = event._value
        self.succeed(self._fired)


class AllOf(Event):
    """Fires when every one of several events has fired.

    The value is a dict mapping each event to its value.
    """

    __slots__ = ("events", "_fired", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        self._fired: dict = {}
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed(self._fired)
            return
        for event in self.events:
            if event.callbacks is None:
                self._on_fire(event)
            else:
                event.callbacks.append(self._on_fire)

    def _on_fire(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._fired[event] = event._value
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed(self._fired)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process wrapping a generator.

    The process is itself an event: it fires (with the generator's return
    value) when the generator finishes, so ``yield some_process`` waits for
    completion.
    """

    __slots__ = ("name", "_generator", "_waiting_on", "_bounce")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: Optional[str] = None):
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._bounce: Optional[Event] = None
        # Kick off execution at the current simulation time.
        self._schedule_resume(True, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _schedule_resume(self, ok: bool, value: Any,
                         defused: bool = False) -> None:
        """Schedule a resume of the generator at the current time.

        Reuses the per-process bounce event when its previous trip through
        the queue has fully completed (callbacks is None); otherwise (first
        use, or the bounce is still in flight after an interrupt detached
        it) a fresh event is allocated.
        """
        bounce = self._bounce
        if bounce is None or bounce.callbacks is not None:
            bounce = Event(self.env)
            self._bounce = bounce
        bounce._ok = ok
        bounce._value = value
        bounce._defused = defused
        bounce.callbacks = [self._resume]
        # Track it as the waited-on event so interrupt() can detach the
        # pending resume instead of delivering a stale second wake-up.
        self._waiting_on = bounce
        env = self.env
        env._scheduled = seq = env._scheduled + 1
        heappush(env._queue, (env._now, 1, seq, bounce))

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        wakeup = Event(self.env)
        wakeup._ok = False
        wakeup._value = Interrupt(cause)
        wakeup._defused = True  # never counts as an unhandled failure
        wakeup.callbacks.append(self._resume)
        self.env.schedule(wakeup, priority=0)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        env = self.env
        env._active_process = self
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            env._active_process = None
            self.fail(exc)
            return
        env._active_process = None

        if isinstance(next_event, Event) and next_event.env is env:
            callbacks = next_event.callbacks
            if callbacks is not None:
                self._waiting_on = next_event
                callbacks.append(self._resume)
            else:
                # Already fired and processed: resume on the next tick so
                # same-time ordering matches a freshly scheduled event.
                self._schedule_resume(
                    next_event._ok, next_event._value,
                    defused=not next_event._ok,
                )
            return

        self._generator.close()
        if not isinstance(next_event, Event):
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded {next_event!r}, "
                    "which is not an Event"
                )
            )
        else:
            self.fail(
                SimulationError(
                    f"process {self.name!r} yielded an event from a "
                    "different Environment"
                )
            )

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name!r} {state}>"


class Environment:
    """Owns simulated time and executes events in timestamp order.

    Ties are broken by insertion order so the simulation is deterministic.

    Randomness is owned here too: every model component that needs a
    random stream derives it with :meth:`rng_stream` instead of touching
    the interpreter-global :mod:`random` state, so a simulation's outcome
    is a pure function of ``(models, seed)`` — the property the
    determinism tests and the ``--parallel`` figure harness rely on.
    """

    def __init__(self, initial_time: float = 0.0,
                 seed: Optional[Any] = None):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._scheduled = 0
        self._cancelled = 0
        self._active_process: Optional[Process] = None
        self._delay_pool: List[_Delay] = []
        self._seed = seed if seed is not None else _DEFAULT_SEED

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def seed(self) -> Optional[Any]:
        """The environment's base seed (``None`` = per-stream keys only)."""
        return self._seed

    def rng_stream(self, key: Any) -> random.Random:
        """A private, reproducible RNG stream named by ``key``.

        Two environments with the same seed hand out identical streams
        for the same key; distinct keys give independent streams.  With
        no environment seed the stream is seeded by ``key`` alone, so a
        component's stream does not change when unrelated components
        are added or reordered.
        """
        if not isinstance(key, (int, str, bytes, bytearray)):
            # Other hashables (e.g. tuples) would seed via hash(), which
            # varies across processes under string-hash randomisation.
            raise TypeError(
                f"rng_stream key must be int/str/bytes, got {type(key).__name__}"
            )
        if self._seed is None:
            return random.Random(key)
        return random.Random(f"{self._seed}/{key}")

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled so far (a determinism fingerprint)."""
        return self._scheduled

    @property
    def cancelled_events(self) -> int:
        """Deferred calls cancelled before firing (stale-wake accounting)."""
        return self._cancelled

    def schedule(self, event: Event, delay: float = 0.0, priority: int = 1) -> None:
        """Enqueue ``event`` to fire ``delay`` time units from now."""
        self._scheduled = seq = self._scheduled + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay``."""
        return Timeout(self, delay, value)

    def delay(self, delay: float, value: Any = None) -> Timeout:
        """Pooled pure-delay timeout for the one-waiter hot path.

        Timing-equivalent to :meth:`timeout` but recycled as soon as its
        callbacks have run, so the returned event must be consumed by a
        single immediate ``yield`` and never retained, combined, or passed
        to ``run(until=...)``.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        pool = self._delay_pool
        if pool:
            ev = pool.pop()
            ev.delay = delay
            ev._value = value
        else:
            ev = _Delay(self)
            ev.delay = delay
            ev._value = value
        self._scheduled = seq = self._scheduled + 1
        heappush(self._queue, (self._now + delay, 1, seq, ev))
        return ev

    def call_later(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> _Callback:
        """Run ``fn(*args)`` after ``delay`` time units (fire-and-forget).

        A single scheduled event replaces the Process + start bounce +
        completion event a ``def ...(): yield env.delay(d); fn()`` helper
        would cost; use it for deferred plain calls that nobody waits on.
        Returns the scheduled event; ``.cancel()`` suppresses the call.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self._scheduled = seq = self._scheduled + 1
        event = _Callback(self, fn, args)
        heappush(self._queue, (self._now + delay, 1, seq, event))
        return event

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any,
                priority: int = PACKET_LEVEL_PRIORITY) -> _Callback:
        """Run ``fn(*args)`` at absolute simulated time ``when``.

        The flow-level engine computes wake-up instants analytically
        (projected flow-completion times, arrival timestamps), so it
        schedules at absolute times rather than relative delays.
        ``priority`` selects the level lane: :data:`FLOW_LEVEL_PRIORITY`
        events run after every packet-level event bearing the same
        timestamp (see the module constants).

        Returns the scheduled event.  A caller holding the handle can
        ``.cancel()`` it when the deferred call becomes stale — cheaper
        than letting a dead wake-up fire through an epoch guard, and it
        keeps the event heap free of work that will be discarded.
        """
        if when < self._now:
            raise SimulationError(
                f"call_at({when}) is in the past (now={self._now})"
            )
        self._scheduled = seq = self._scheduled + 1
        event = _Callback(self, fn, args)
        heappush(self._queue, (when, priority, seq, event))
        return event

    def process(self, generator: ProcessGenerator,
                name: Optional[str] = None) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        self._now, _, _, event = heappop(self._queue)
        callbacks = event.callbacks
        event.callbacks = None
        if event.__class__ is _Delay:
            for callback in callbacks:
                callback(event)
            event.callbacks = callbacks
            callbacks.clear()
            event._value = _PENDING
            self._delay_pool.append(event)
            return
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused and not callbacks:
            # A failed event that nobody was waiting on: surface the error
            # rather than letting it pass silently.
            raise event._value

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the queue drains, ``until`` time passes, or an event.

        ``until`` may be a number (run until that simulated time) or an
        :class:`Event` (run until it fires, returning its value).
        """
        if _obs.enabled():
            return self._run_observed(until)
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        queue = self._queue
        pool = self._delay_pool
        pending = _PENDING
        pop = heappop
        if stop_event is None and stop_time == float("inf"):
            # Unbounded run: the common benchmark/drain shape — no
            # per-event stop checks.
            while queue:
                self._now, _, _, event = pop(queue)
                callbacks = event.callbacks
                event.callbacks = None
                if event.__class__ is _Delay:
                    for callback in callbacks:
                        callback(event)
                    event.callbacks = callbacks
                    callbacks.clear()
                    event._value = pending
                    pool.append(event)
                    continue
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused and not callbacks:
                    raise event._value
            return None
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            entry = queue[0]
            if entry[0] > stop_time:
                self._now = stop_time
                return None
            self._now, _, _, event = pop(queue)
            callbacks = event.callbacks
            event.callbacks = None
            if event.__class__ is _Delay:
                for callback in callbacks:
                    callback(event)
                event.callbacks = callbacks
                callbacks.clear()
                event._value = pending
                pool.append(event)
                continue
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused and not callbacks:
                raise event._value

        if stop_event is not None:
            if stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None

    def _run_observed(self, until: Optional[float] = None) -> Any:
        """Instrumented twin of :meth:`run`, used while ``repro.obs`` records.

        Identical semantics — same timestamps, tie-breaking, stop handling,
        failure propagation, and ``_Delay`` recycling — plus per-event
        metrics: event counts by class, queue-depth distribution, and each
        process's share of elapsed simulated time.  Kept as a separate loop
        so the disabled-mode fast paths in :meth:`run` pay nothing.
        """
        stop_event: Optional[Event] = None
        stop_time = float("inf")
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self._now:
                raise SimulationError(
                    f"until={stop_time} is in the past (now={self._now})"
                )

        registry = _obs.session().registry
        events_by_kind = registry.counter(
            "sim.events", "events processed, by event class", ("kind",))
        queue_depth = registry.histogram(
            "sim.queue_depth", "event-queue depth at each pop",
            buckets=tuple(float(2 ** e) for e in range(17)))
        process_share = registry.counter(
            "sim.process_share_s",
            "elapsed simulated time attributed to the resumed process",
            ("process",))

        queue = self._queue
        pool = self._delay_pool
        pending = _PENDING
        pop = heappop
        prev_now = self._now
        while queue:
            if stop_event is not None and stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            if queue[0][0] > stop_time:
                self._now = stop_time
                return None
            queue_depth.observe(len(queue))
            self._now, _, _, event = pop(queue)
            callbacks = event.callbacks
            event.callbacks = None
            events_by_kind.inc(1.0, kind=event.__class__.__name__)
            dt = self._now - prev_now
            if dt > 0.0:
                process_share.inc(dt, process=_event_owner(event, callbacks))
            prev_now = self._now
            if event.__class__ is _Delay:
                for callback in callbacks:
                    callback(event)
                event.callbacks = callbacks
                callbacks.clear()
                event._value = pending
                pool.append(event)
                continue
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused and not callbacks:
                raise event._value

        if stop_event is not None:
            if stop_event.callbacks is None:
                if not stop_event._ok:
                    raise stop_event._value
                return stop_event._value
            raise SimulationError(
                "run(until=event) exhausted the queue before the event fired"
            )
        if stop_time != float("inf"):
            self._now = stop_time
        return None


def _event_owner(event: Event, callbacks: List[Callable]) -> str:
    """Attribute an event to a process for sim-time-share accounting.

    A firing :class:`Process` owns itself; otherwise the event belongs to
    the first waiting process (bounce and timeout callbacks are bound
    ``Process._resume`` methods).  Events nobody waits on fall back to
    their class name.
    """
    if isinstance(event, Process):
        return event.name
    for callback in callbacks:
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            return owner.name
    return event.__class__.__name__
