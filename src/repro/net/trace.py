"""Packet tracing: capture frames at ports for debugging and analysis.

A :class:`PacketTracer` taps any set of ports (host NICs, PFE ports,
Tofino ports) and records every frame with its direction and timestamp,
without perturbing timing.  Captures can be filtered, summarised, and
rendered as a human-readable trace — the moral equivalent of running
tcpdump on the testbed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional

from repro.net.headers import ETHERTYPE_IPV4, HeaderError, IPv4Header
from repro.net.link import Port
from repro.net.packet import Packet
from repro.obs import bus as _obs

__all__ = ["CapturedFrame", "PacketTracer"]


@dataclass(frozen=True)
class CapturedFrame:
    """One captured frame."""

    time: float
    port: str
    direction: str  # "rx" or "tx"
    packet_id: int
    length: int
    summary: str


def _summarise(packet: Packet) -> str:
    try:
        __, ip, udp, payload = packet.parse_udp()
        return (f"{ip.src}:{udp.src_port} > {ip.dst}:{udp.dst_port} "
                f"UDP len={len(payload)}")
    except HeaderError:
        pass
    try:
        ether, rest = packet.parse_ethernet()
    except HeaderError:
        return f"raw frame len={len(packet)}"
    if ether.ethertype == ETHERTYPE_IPV4:
        # IPv4 but not parseable UDP (another transport, or a truncated
        # datagram): summarise at the IP layer instead of dropping to the
        # bare Ethernet line.
        try:
            ip, __ = IPv4Header.parse(rest, verify_checksum=False)
            return (f"{ip.src} > {ip.dst} "
                    f"proto={ip.protocol} len={ip.total_length}")
        except HeaderError:
            pass
    return (f"{ether.src} > {ether.dst} "
            f"ethertype={ether.ethertype:#06x}")


class PacketTracer:
    """Captures frames at tapped ports.

    Taps wrap the port's receive handler (for "rx") and its ``send``
    method (for "tx"); both keep original behaviour intact.
    """

    def __init__(self, max_frames: int = 100_000):
        self.max_frames = max_frames
        self.frames: List[CapturedFrame] = []
        self.dropped_capacity = 0

    def tap(self, port: Port, directions: Iterable[str] = ("rx", "tx")
            ) -> None:
        """Start capturing at ``port`` for the given directions."""
        directions = set(directions)
        unknown = directions - {"rx", "tx"}
        if unknown:
            raise ValueError(f"unknown directions: {sorted(unknown)}")
        if "rx" in directions:
            original_handler = port.rx_handler

            def rx_handler(packet: Packet, p: Port,
                           __orig=original_handler):
                self._capture(p, packet, "rx")
                if __orig is not None:
                    return __orig(packet, p)
                return None

            port.rx_handler = rx_handler
        if "tx" in directions:
            original_send = port.send

            def send(packet: Packet, __orig=original_send):
                self._capture(port, packet, "tx")
                return __orig(packet)

            port.send = send

    def _capture(self, port: Port, packet: Packet, direction: str) -> None:
        if len(self.frames) >= self.max_frames:
            self.dropped_capacity += 1
            return
        summary = _summarise(packet)
        self.frames.append(
            CapturedFrame(
                time=port.env.now,
                port=port.name,
                direction=direction,
                packet_id=packet.packet_id,
                length=len(packet),
                summary=summary,
            )
        )
        obs = _obs.session()
        if obs is not None:
            # Same simulated clock and export path as every other probe:
            # captures appear on per-port trace tracks next to the spans.
            obs.probe("net.frames", direction=direction, port=port.name)
            obs.instant(summary, port.env.now, track=f"net/{port.name}",
                        direction=direction, packet_id=packet.packet_id,
                        length=len(packet))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def filter(self, predicate: Callable[[CapturedFrame], bool]
               ) -> List[CapturedFrame]:
        """Frames matching ``predicate``, in capture order."""
        return [frame for frame in self.frames if predicate(frame)]

    def at_port(self, port_name: str) -> List[CapturedFrame]:
        return self.filter(lambda frame: frame.port == port_name)

    def counts_by_port(self) -> dict:
        """{(port, direction): frame count}."""
        counts: dict = {}
        for frame in self.frames:
            key = (frame.port, frame.direction)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def render(self, limit: Optional[int] = None) -> str:
        """tcpdump-style text rendering of the capture."""
        lines = []
        frames = self.frames if limit is None else self.frames[:limit]
        for frame in frames:
            lines.append(
                f"{frame.time * 1e6:12.3f}us {frame.port:<16} "
                f"{frame.direction:<2} {frame.summary} "
                f"({frame.length}B)"
            )
        if limit is not None and len(self.frames) > limit:
            lines.append(f"... {len(self.frames) - limit} more frames")
        return "\n".join(lines)
