"""NIC model: TX/RX rings in front of a port, DPDK style.

The paper's end hosts drive 100 Gbps ConnectX-5 NICs through DPDK, i.e.
user space owns descriptor rings and the NIC drains/fills them.  The model
captures what matters for the experiments: a bounded TX ring (packets are
dropped or the sender blocks when it is full), per-packet TX overhead for
the host side, and an RX callback path with no kernel latency.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.link import Port
from repro.net.packet import Packet
from repro.sim import Environment, Store

__all__ = ["NIC"]


class NIC:
    """A host NIC with a bounded TX ring and an RX callback.

    Args:
        env: simulation environment.
        name: NIC name (also names its port).
        mac: station MAC address.
        ip: station IPv4 address.
        tx_ring_size: descriptor ring depth; :meth:`send` blocks the calling
            process when full.
        tx_overhead_s: per-packet host-side cost (DPDK descriptor write +
            doorbell), applied before a frame reaches the wire.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        tx_ring_size: int = 1024,
        tx_overhead_s: float = 0.0,
    ):
        self.env = env
        self.name = name
        self.mac = MACAddress(mac)
        self.ip = IPv4Address(ip)
        self.tx_overhead_s = float(tx_overhead_s)
        self.port = Port(env, name=f"{name}.port", rx_handler=self._on_rx)
        self._tx_ring: Store = Store(env, capacity=tx_ring_size)
        self._rx_callback: Optional[Callable[[Packet], Any]] = None
        self.dropped_rx = 0
        env.process(self._tx_loop(), name=f"nic:{name}:tx")

    def set_rx_callback(self, callback: Callable[[Packet], Any]) -> None:
        """Install the function invoked for every received frame.

        A generator-returning callback is run as a new process per frame.
        """
        self._rx_callback = callback

    def send(self, packet: Packet):
        """Queue ``packet`` on the TX ring; yields until accepted.

        Usage (inside a process)::

            yield nic.send(pkt)
        """
        return self._tx_ring.put(packet)

    def try_send(self, packet: Packet):
        """Enqueue ``packet``, blocking only when the ring is full.

        Returns None when the ring accepted the frame synchronously;
        otherwise returns the pending ack event, which the caller must
        ``yield`` (back-pressure, same semantics as :meth:`send`).
        """
        ring = self._tx_ring
        if ring.capacity is None or len(ring) < ring.capacity:
            ring.put_nowait(packet)
            return None
        return ring.put(packet)

    def send_nowait(self, packet: Packet) -> bool:
        """Best-effort enqueue; returns False (dropping) if the ring is full."""
        if (
            self._tx_ring.capacity is not None
            and len(self._tx_ring) >= self._tx_ring.capacity
        ):
            return False
        self._tx_ring.put_nowait(packet)
        return True

    def _tx_loop(self):
        while True:
            packet = yield self._tx_ring.get()
            if self.tx_overhead_s:
                yield self.env.delay(self.tx_overhead_s)
            self.port.send(packet)

    def _on_rx(self, packet: Packet, port: Port) -> Any:
        if self._rx_callback is None:
            self.dropped_rx += 1
            return None
        return self._rx_callback(packet)

    def __repr__(self) -> str:
        return f"<NIC {self.name} mac={self.mac} ip={self.ip}>"
