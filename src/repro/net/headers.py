"""Byte-accurate Ethernet, IPv4, and UDP header codecs.

Each header class packs to and parses from wire format.  The Trio and PISA
models parse these headers exactly as real hardware would -- by offset into
the packet head bytes -- so the codecs here are the single source of truth
for field layout.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Tuple

from repro.net.addressing import IPv4Address, MACAddress

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (packet -> headers)
    from repro.net.packet import Packet

__all__ = [
    "ETHERTYPE_ARP",
    "ETHERTYPE_IPV4",
    "EthernetHeader",
    "FlowKey",
    "HeaderError",
    "IPv4Header",
    "UDPHeader",
    "flow_key",
    "ipv4_checksum",
    "source_key",
]

#: Canonical 5-tuple-minus-protocol flow identity used by every consumer
#: of per-flow state: (src_ip, dst_ip, src_port, dst_port) as plain ints.
FlowKey = Tuple[int, int, int, int]

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806

IPPROTO_UDP = 17


class HeaderError(ValueError):
    """Raised when a header fails to parse or has inconsistent fields."""


def flow_key(packet: "Packet") -> FlowKey:
    """Extract the canonical UDP flow key from a packet.

    This is the single flow-identity codec shared by the telemetry and
    firewall data paths (both the Trio applications and the
    :mod:`repro.nf` modules) — previously each application parsed and
    tupled the headers itself, and the copies had already started to
    drift in field order conventions.  Raises :class:`HeaderError` when
    the frame is not Ethernet/IPv4/UDP.
    """
    __, ip, udp, __ = packet.parse_udp()
    return (int(ip.src), int(ip.dst), udp.src_port, udp.dst_port)


def source_key(packet: "Packet") -> int:
    """Extract the source-IP key used for per-source (DDoS) state.

    Same contract as :func:`flow_key`: raises :class:`HeaderError` on a
    non-UDP frame, so callers treat unparseable traffic uniformly.
    """
    __, ip, __, __ = packet.parse_udp()
    return int(ip.src)


def ipv4_checksum(data: bytes) -> int:
    """RFC 1071 one's-complement checksum over ``data``.

    ``data`` is zero-padded to an even length.  Returns the 16-bit
    checksum value to place in the header.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst: MACAddress
    src: MACAddress
    ethertype: int = ETHERTYPE_IPV4

    LENGTH = 14

    def pack(self) -> bytes:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise HeaderError(f"ethertype out of range: {self.ethertype:#x}")
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def parse(cls, data: bytes) -> Tuple["EthernetHeader", bytes]:
        """Parse from ``data``; returns (header, remaining bytes)."""
        if len(data) < cls.LENGTH:
            raise HeaderError(
                f"Ethernet header needs {cls.LENGTH} bytes, got {len(data)}"
            )
        dst = MACAddress.from_bytes(data[0:6])
        src = MACAddress.from_bytes(data[6:12])
        (ethertype,) = struct.unpack("!H", data[12:14])
        return cls(dst=dst, src=src, ethertype=ethertype), data[14:]


@dataclass
class IPv4Header:
    """20-byte IPv4 header (no options) with checksum support.

    ``total_length`` covers the IP header plus everything after it.
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int = IPPROTO_UDP
    total_length: int = 20
    identification: int = 0
    ttl: int = 64
    dscp: int = 0
    flags: int = 0
    fragment_offset: int = 0
    version: int = 4
    ihl: int = 5

    MIN_LENGTH = 20

    @property
    def header_length(self) -> int:
        """Header length in bytes, from the IHL field."""
        return self.ihl * 4

    def pack(self) -> bytes:
        if self.ihl != 5:
            raise HeaderError("only option-less IPv4 headers (IHL=5) can be packed")
        if not 20 <= self.total_length <= 0xFFFF:
            raise HeaderError(f"bad total_length: {self.total_length}")
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (self.version << 4) | self.ihl,
            self.dscp << 2,
            self.total_length,
            self.identification,
            (self.flags << 13) | self.fragment_offset,
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            self.src.to_bytes(),
            self.dst.to_bytes(),
        )
        checksum = ipv4_checksum(header)
        return header[:10] + struct.pack("!H", checksum) + header[12:]

    @classmethod
    def parse(cls, data: bytes, verify_checksum: bool = True
              ) -> Tuple["IPv4Header", bytes]:
        """Parse from ``data``; returns (header, remaining bytes)."""
        if len(data) < cls.MIN_LENGTH:
            raise HeaderError(
                f"IPv4 header needs {cls.MIN_LENGTH} bytes, got {len(data)}"
            )
        version_ihl = data[0]
        version = version_ihl >> 4
        ihl = version_ihl & 0x0F
        if version != 4:
            raise HeaderError(f"not an IPv4 packet (version={version})")
        if ihl < 5:
            raise HeaderError(f"bad IHL: {ihl}")
        header_length = ihl * 4
        if len(data) < header_length:
            raise HeaderError("truncated IPv4 header (options exceed buffer)")
        (
            __,
            dscp_ecn,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            src_raw,
            dst_raw,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        if verify_checksum and ipv4_checksum(data[:header_length]) != 0:
            raise HeaderError("IPv4 header checksum mismatch")
        header = cls(
            src=IPv4Address.from_bytes(src_raw),
            dst=IPv4Address.from_bytes(dst_raw),
            protocol=protocol,
            total_length=total_length,
            identification=identification,
            ttl=ttl,
            dscp=dscp_ecn >> 2,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            version=version,
            ihl=ihl,
        )
        return header, data[header_length:]


@dataclass
class UDPHeader:
    """8-byte UDP header.  ``length`` covers header plus payload."""

    src_port: int
    dst_port: int
    length: int = 8
    checksum: int = 0

    LENGTH = 8

    def pack(self) -> bytes:
        for name, port in (("src_port", self.src_port), ("dst_port", self.dst_port)):
            if not 0 <= port <= 0xFFFF:
                raise HeaderError(f"{name} out of range: {port}")
        if not 8 <= self.length <= 0xFFFF:
            raise HeaderError(f"bad UDP length: {self.length}")
        return struct.pack(
            "!HHHH", self.src_port, self.dst_port, self.length, self.checksum
        )

    @classmethod
    def parse(cls, data: bytes) -> Tuple["UDPHeader", bytes]:
        """Parse from ``data``; returns (header, remaining bytes)."""
        if len(data) < cls.LENGTH:
            raise HeaderError(f"UDP header needs {cls.LENGTH} bytes, got {len(data)}")
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", data[:8])
        if length < 8:
            raise HeaderError(f"bad UDP length field: {length}")
        return (
            cls(src_port=src_port, dst_port=dst_port, length=length,
                checksum=checksum),
            data[8:],
        )
