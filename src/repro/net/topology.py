"""Topology builder: wires hosts and device ports together.

Keeps an inventory of named nodes and the links between their ports, so an
experiment can be described declaratively::

    topo = Topology(env)
    topo.add_host(worker)
    topo.connect(worker.nic.port, router_port, bandwidth_bps=100e9)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.net.host import Host
from repro.net.link import Link, Port
from repro.sim import Environment

__all__ = ["Hop", "Topology"]

#: One step of a flow path: the link plus the port transmitting onto it.
#: The transmit port identifies the *direction*, which is what the
#: flow-level solver allocates capacity over (each direction of a
#: full-duplex link is an independent resource).
Hop = Tuple[Link, Port]

#: Default link speed of the paper's testbed.
DEFAULT_BANDWIDTH_BPS = 100e9
#: A couple of metres of fibre plus PHY latency.
DEFAULT_PROPAGATION_S = 1e-6


class Topology:
    """An inventory of hosts, devices, and links for one experiment."""

    def __init__(self, env: Environment):
        self.env = env
        self.hosts: Dict[str, Host] = {}
        self.devices: Dict[str, object] = {}
        self.links: List[Link] = []
        #: port name -> owning node name, for flow-path resolution.
        self._port_owner: Dict[str, str] = {}
        #: Memoised node adjacency for :meth:`find_path`; rebuilt after
        #: any link or port-ownership change.
        self._adjacency: Optional[Dict[str, List[Tuple[str, Hop]]]] = None

    def add_host(self, host: Host) -> Host:
        """Register a host by its name (and its NIC port for routing)."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name: {host.name!r}")
        self.hosts[host.name] = host
        self._port_owner[host.nic.port.name] = host.name
        self._adjacency = None
        return host

    def add_device(self, name: str, device: object) -> object:
        """Register a switch/router device by name."""
        if name in self.devices:
            raise ValueError(f"duplicate device name: {name!r}")
        self.devices[name] = device
        return device

    def register_port(self, port: Port, node_name: str) -> Port:
        """Declare that ``port`` belongs to node ``node_name``.

        Host NIC ports are registered automatically by :meth:`add_host`;
        device ports must be registered explicitly before
        :meth:`find_path` can route through the device.
        """
        self._port_owner[port.name] = node_name
        self._adjacency = None
        return port

    def port_owner(self, port: Port) -> Optional[str]:
        """The node name that owns ``port``, or None if unregistered."""
        return self._port_owner.get(port.name)

    def find_path(self, src: str, dst: str) -> List[Hop]:
        """Shortest path from node ``src`` to node ``dst`` as directed hops.

        Breadth-first search over the link inventory, deterministic by
        construction: neighbours are explored in link-insertion order, so
        two identically built topologies always return the same path.
        Each hop is ``(link, tx_port)`` — the transmit port names the
        link *direction* the flow occupies.  Raises ``ValueError`` when
        either node is unknown or no path exists.
        """
        if src not in self.hosts and src not in self.devices:
            raise ValueError(f"unknown node: {src!r}")
        if dst not in self.hosts and dst not in self.devices:
            raise ValueError(f"unknown node: {dst!r}")
        if src == dst:
            return []
        # node -> list of (neighbour node, hop), in link-insertion
        # order; memoised across calls since a topology is static once
        # built (any mutation clears the cache).
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = {}
            for link in self.links:
                a, b = link.ports
                owner_a = self._port_owner.get(a.name)
                owner_b = self._port_owner.get(b.name)
                if owner_a is None or owner_b is None:
                    continue
                adjacency.setdefault(owner_a, []).append((owner_b, (link, a)))
                adjacency.setdefault(owner_b, []).append((owner_a, (link, b)))
            self._adjacency = adjacency
        frontier = [src]
        came_from: Dict[str, Tuple[str, Hop]] = {src: (src, None)}
        while frontier:
            next_frontier: List[str] = []
            for node in frontier:
                for neighbour, hop in adjacency.get(node, ()):
                    if neighbour in came_from:
                        continue
                    came_from[neighbour] = (node, hop)
                    if neighbour == dst:
                        path: List[Hop] = []
                        cursor = dst
                        while cursor != src:
                            cursor, step = came_from[cursor]
                            path.append(step)
                        path.reverse()
                        return path
                    next_frontier.append(neighbour)
            frontier = next_frontier
        raise ValueError(f"no path from {src!r} to {dst!r}")

    def connect(
        self,
        a: Port,
        b: Port,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay_s: float = DEFAULT_PROPAGATION_S,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> Link:
        """Create a full-duplex link between two ports."""
        link = Link(
            self.env,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            propagation_delay_s=propagation_delay_s,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
        )
        self.links.append(link)
        self._adjacency = None
        return link

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def device(self, name: str) -> object:
        """Look up a device by name."""
        return self.devices[name]

    def find_port(self, name: str) -> Optional[Port]:
        """Find any connected port by its name, or None."""
        for link in self.links:
            for port in link.ports:
                if port.name == name:
                    return port
        return None
