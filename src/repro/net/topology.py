"""Topology builder: wires hosts and device ports together.

Keeps an inventory of named nodes and the links between their ports, so an
experiment can be described declaratively::

    topo = Topology(env)
    topo.add_host(worker)
    topo.connect(worker.nic.port, router_port, bandwidth_bps=100e9)
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.net.host import Host
from repro.net.link import Link, Port
from repro.sim import Environment

__all__ = ["Topology"]

#: Default link speed of the paper's testbed.
DEFAULT_BANDWIDTH_BPS = 100e9
#: A couple of metres of fibre plus PHY latency.
DEFAULT_PROPAGATION_S = 1e-6


class Topology:
    """An inventory of hosts, devices, and links for one experiment."""

    def __init__(self, env: Environment):
        self.env = env
        self.hosts: Dict[str, Host] = {}
        self.devices: Dict[str, object] = {}
        self.links: List[Link] = []

    def add_host(self, host: Host) -> Host:
        """Register a host by its name."""
        if host.name in self.hosts:
            raise ValueError(f"duplicate host name: {host.name!r}")
        self.hosts[host.name] = host
        return host

    def add_device(self, name: str, device: object) -> object:
        """Register a switch/router device by name."""
        if name in self.devices:
            raise ValueError(f"duplicate device name: {name!r}")
        self.devices[name] = device
        return device

    def connect(
        self,
        a: Port,
        b: Port,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay_s: float = DEFAULT_PROPAGATION_S,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ) -> Link:
        """Create a full-duplex link between two ports."""
        link = Link(
            self.env,
            a,
            b,
            bandwidth_bps=bandwidth_bps,
            propagation_delay_s=propagation_delay_s,
            loss_rate=loss_rate,
            loss_seed=loss_seed,
        )
        self.links.append(link)
        return link

    def host(self, name: str) -> Host:
        """Look up a host by name."""
        return self.hosts[name]

    def device(self, name: str) -> object:
        """Look up a device by name."""
        return self.devices[name]

    def find_port(self, name: str) -> Optional[Port]:
        """Find any connected port by its name, or None."""
        for link in self.links:
            for port in link.ports:
                if port.name == name:
                    return port
        return None
