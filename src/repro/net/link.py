"""Point-to-point links and device ports.

A :class:`Port` is a named attachment point on a device; a :class:`Link`
joins two ports and models serialisation delay (frame bits divided by link
bandwidth) plus fixed propagation delay.  Each direction of the link
serialises frames one at a time, so offered load beyond the link rate
queues up -- exactly the behaviour the window-sweep experiment (Fig. 16)
depends on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.net.packet import Packet
from repro.sim import Environment, Store

__all__ = ["Link", "Port"]

#: Callback type invoked when a frame arrives at a port.
RxHandler = Callable[[Packet, "Port"], Any]


class Port:
    """One attachment point: transmit via :meth:`send`, receive via handler.

    A port belongs to a device; the device registers an ``rx_handler`` that
    the link calls on frame delivery.  The handler may be a plain function
    or return a generator, in which case it is run as a simulation process.
    """

    def __init__(self, env: Environment, name: str,
                 rx_handler: Optional[RxHandler] = None):
        self.env = env
        self.name = name
        self.rx_handler = rx_handler
        self.link: Optional["Link"] = None
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0

    @property
    def connected(self) -> bool:
        return self.link is not None

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission on the attached link."""
        if self.link is None:
            raise RuntimeError(f"port {self.name!r} is not connected to a link")
        self.tx_packets += 1
        self.tx_bytes += len(packet)
        self.link.transmit(self, packet)

    def deliver(self, packet: Packet) -> None:
        """Called by the link when a frame arrives at this port."""
        self.rx_packets += 1
        self.rx_bytes += len(packet)
        if self.rx_handler is None:
            return
        result = self.rx_handler(packet, self)
        if result is not None and hasattr(result, "send"):
            self.env.process(result, name=f"rx@{self.name}")

    def __repr__(self) -> str:
        state = "up" if self.connected else "down"
        return f"<Port {self.name} {state}>"


class Link:
    """Full-duplex point-to-point link between two ports.

    Each direction has its own serialiser process and FIFO, so the two
    directions never contend with each other (as on a real fibre pair).
    """

    def __init__(
        self,
        env: Environment,
        a: Port,
        b: Port,
        bandwidth_bps: float = 100e9,
        propagation_delay_s: float = 1e-6,
        loss_rate: float = 0.0,
        loss_seed: int = 0,
    ):
        """``loss_rate`` is the per-frame drop probability (transient
        congestion / corruption), applied independently per direction
        with a deterministic seeded RNG."""
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if propagation_delay_s < 0:
            raise ValueError(f"negative propagation delay: {propagation_delay_s}")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1): {loss_rate}")
        if a.connected or b.connected:
            raise RuntimeError("port already attached to a link")
        self.env = env
        self.bandwidth_bps = float(bandwidth_bps)
        self.propagation_delay_s = float(propagation_delay_s)
        self.loss_rate = float(loss_rate)
        # Stream keyed by loss_seed alone, so two links with the same
        # seed drop the same frame indices regardless of creation order.
        self._loss_rng = env.rng_stream(loss_seed)
        self.frames_lost = 0
        self.ports = (a, b)
        a.link = self
        b.link = self
        self._queues = {a: Store(env), b: Store(env)}
        # Flow-level (fluid) occupancy, per transmit direction: flow_id ->
        # allocated rate in bps, written back by the flow engine after
        # every max-min re-solve.  Purely observational bookkeeping for
        # the packet level — serialisation below never reads it — but it
        # lets rate hooks, figures, and the escalation policy ask "what
        # is this link carrying at flow level right now?".
        self.fluid_flows = {a: {}, b: {}}
        env.process(self._serialise(a, b), name=f"link:{a.name}->{b.name}")
        env.process(self._serialise(b, a), name=f"link:{b.name}->{a.name}")

    # -- flow-level rate hooks ------------------------------------------

    def fluid_attach(self, src_port: Port, flow_id: int,
                     rate_bps: float = 0.0) -> None:
        """Register fluid flow ``flow_id`` transmitting out of ``src_port``."""
        self.fluid_flows[src_port][flow_id] = rate_bps

    def fluid_detach(self, src_port: Port, flow_id: int) -> None:
        """Remove fluid flow ``flow_id`` from the ``src_port`` direction."""
        self.fluid_flows[src_port].pop(flow_id, None)

    def fluid_set_rate(self, src_port: Port, flow_id: int,
                       rate_bps: float) -> None:
        """Record ``flow_id``'s solved rate on the ``src_port`` direction."""
        self.fluid_flows[src_port][flow_id] = rate_bps

    def fluid_load_bps(self, src_port: Port) -> float:
        """Total solved fluid rate currently leaving ``src_port``."""
        return sum(self.fluid_flows[src_port].values())

    def fluid_utilisation(self, src_port: Port) -> float:
        """Fluid load on the ``src_port`` direction as a capacity fraction."""
        return self.fluid_load_bps(src_port) / self.bandwidth_bps

    def other_end(self, port: Port) -> Port:
        """The port on the far side of ``port``."""
        a, b = self.ports
        if port is a:
            return b
        if port is b:
            return a
        raise ValueError(f"{port!r} is not attached to this link")

    def transmit(self, src: Port, packet: Packet) -> None:
        """Queue ``packet`` for serialisation out of ``src``."""
        self._queues[src].put_nowait(packet)

    def _serialise(self, src: Port, dst: Port):
        queue = self._queues[src]
        while True:
            packet = yield queue.get()
            yield self.env.delay(packet.bits / self.bandwidth_bps)
            if self.loss_rate and self._loss_rng.random() < self.loss_rate:
                self.frames_lost += 1
                continue
            # Propagation happens in parallel with the next serialisation:
            # one scheduled delivery event, no per-frame process.
            self.env.call_later(self.propagation_delay_s, dst.deliver, packet)
