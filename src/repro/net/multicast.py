"""Multicast group membership table.

Trio-ML delivers aggregation Result packets to all workers of a job via IP
multicast: workers join a group (IGMP registration, or static multicast
configuration on the router), and standard forwarding replicates the Result
to every member port (§4, "Hierarchical aggregation").  This table is the
router-side state backing that behaviour.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.net.addressing import IPv4Address

__all__ = ["MulticastGroupTable"]


class MulticastGroupTable:
    """Maps multicast group address -> set of member port names."""

    def __init__(self):
        self._groups: Dict[IPv4Address, Set[str]] = {}

    def join(self, group: IPv4Address, port_name: str) -> None:
        """Add ``port_name`` to ``group`` (IGMP join / static config)."""
        group = IPv4Address(group)
        if not group.is_multicast:
            raise ValueError(f"{group} is not a multicast group address")
        self._groups.setdefault(group, set()).add(port_name)

    def leave(self, group: IPv4Address, port_name: str) -> None:
        """Remove ``port_name`` from ``group``; empty groups are deleted."""
        group = IPv4Address(group)
        members = self._groups.get(group)
        if not members:
            return
        members.discard(port_name)
        if not members:
            del self._groups[group]

    def members(self, group: IPv4Address) -> List[str]:
        """Member port names of ``group`` (sorted, possibly empty)."""
        return sorted(self._groups.get(IPv4Address(group), ()))

    def groups(self) -> Iterable[IPv4Address]:
        """All groups with at least one member."""
        return list(self._groups)

    def __contains__(self, group: object) -> bool:
        try:
            return IPv4Address(group) in self._groups  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return False
