"""A generic end host: one NIC plus an inbox of received packets.

Workload models (SwitchML workers, Trio-ML workers, traffic generators)
subclass or wrap :class:`Host`.  The base class provides UDP send/receive
convenience so applications deal in payloads, not frames.
"""

from __future__ import annotations

from typing import Optional

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import HeaderError
from repro.net.nic import NIC
from repro.net.packet import Packet
from repro.sim import Environment, Store

__all__ = ["Host"]


class Host:
    """An end host with a single NIC and a received-packet inbox."""

    def __init__(
        self,
        env: Environment,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        tx_ring_size: int = 4096,
        tx_overhead_s: float = 0.0,
    ):
        self.env = env
        self.name = name
        self.nic = NIC(
            env,
            name=name,
            mac=mac,
            ip=ip,
            tx_ring_size=tx_ring_size,
            tx_overhead_s=tx_overhead_s,
        )
        self.inbox: Store = Store(env)
        self.nic.set_rx_callback(self._receive)
        # Flow-level endpoint state: open fluid flows by id (tx = this
        # host is the source, rx = the sink) plus byte totals, maintained
        # by the flow engine through the attach/detach hooks below.  The
        # packet path never reads these; they exist so figures and the
        # escalation policy can ask "how many flows converge on this
        # host?" (the incast test) without scanning every link.
        self.fluid_tx_flows: dict = {}
        self.fluid_rx_flows: dict = {}
        self.fluid_tx_bytes = 0.0
        self.fluid_rx_bytes = 0.0

    @property
    def mac(self) -> MACAddress:
        return self.nic.mac

    @property
    def ip(self) -> IPv4Address:
        return self.nic.ip

    # -- flow-level endpoint hooks --------------------------------------

    def fluid_open(self, flow_id: int, role: str) -> None:
        """Register an open fluid flow; ``role`` is ``"tx"`` or ``"rx"``."""
        flows = self.fluid_tx_flows if role == "tx" else self.fluid_rx_flows
        flows[flow_id] = 0.0

    def fluid_set_rate(self, flow_id: int, role: str,
                       rate_bps: float) -> None:
        """Record a solved per-flow rate on this endpoint."""
        flows = self.fluid_tx_flows if role == "tx" else self.fluid_rx_flows
        if flow_id in flows:
            flows[flow_id] = rate_bps

    def fluid_close(self, flow_id: int, role: str, size_bytes: float) -> None:
        """Close a fluid flow, accounting its bytes to this endpoint."""
        if role == "tx":
            self.fluid_tx_flows.pop(flow_id, None)
            self.fluid_tx_bytes += size_bytes
        else:
            self.fluid_rx_flows.pop(flow_id, None)
            self.fluid_rx_bytes += size_bytes

    @property
    def fluid_fan_in(self) -> int:
        """Number of fluid flows currently converging on this host."""
        return len(self.fluid_rx_flows)

    def _receive(self, packet: Packet) -> None:
        self.inbox.put_nowait(packet)

    def send_udp(
        self,
        dst_mac: MACAddress,
        dst_ip: IPv4Address,
        src_port: int,
        dst_port: int,
        payload: bytes,
    ):
        """Build and queue a UDP frame; yields until the NIC accepts it."""
        packet = Packet.udp(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
        )
        return self.nic.send(packet)

    def try_send_udp(
        self,
        dst_mac: MACAddress,
        dst_ip: IPv4Address,
        src_port: int,
        dst_port: int,
        payload: bytes,
    ):
        """Like :meth:`send_udp`, but grants synchronously when possible.

        Returns None when the NIC ring accepted the frame immediately;
        otherwise returns the pending ack event to ``yield`` on.
        """
        packet = Packet.udp(
            src_mac=self.mac,
            dst_mac=dst_mac,
            src_ip=self.ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            payload=payload,
        )
        return self.nic.try_send(packet)

    def recv(self):
        """Event yielding the next received packet."""
        return self.inbox.get()

    def recv_udp_payload(self, packet: Optional[Packet] = None):
        """Process helper: receive a frame and return its UDP payload.

        Non-UDP frames are skipped.  Usage::

            payload = yield from host.recv_udp_payload()
        """
        while True:
            frame = packet if packet is not None else (yield self.recv())
            packet = None
            try:
                __, __, __, payload = frame.parse_udp()
            except HeaderError:
                continue
            return payload

    def __repr__(self) -> str:
        return f"<Host {self.name} ip={self.ip}>"
