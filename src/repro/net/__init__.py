"""Network substrate: packets, headers, links, NICs, hosts, topologies.

This package provides the byte-accurate transport layer that both the Trio
router model and the PISA/Tofino model plug into.  It models what the
paper's testbed provides physically: 100 Gbps links, ConnectX-5-style NICs
with TX/RX rings, Ethernet/IPv4/UDP encapsulation, and multicast delivery.
"""

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import (
    ETHERTYPE_ARP,
    ETHERTYPE_IPV4,
    EthernetHeader,
    FlowKey,
    HeaderError,
    IPv4Header,
    UDPHeader,
    flow_key,
    ipv4_checksum,
    source_key,
)
from repro.net.packet import Packet
from repro.net.link import Link, Port
from repro.net.nic import NIC
from repro.net.host import Host
from repro.net.multicast import MulticastGroupTable
from repro.net.topology import Topology
from repro.net.trace import CapturedFrame, PacketTracer

__all__ = [
    "CapturedFrame",
    "ETHERTYPE_ARP",
    "PacketTracer",
    "ETHERTYPE_IPV4",
    "EthernetHeader",
    "FlowKey",
    "HeaderError",
    "Host",
    "IPv4Address",
    "IPv4Header",
    "Link",
    "MACAddress",
    "MulticastGroupTable",
    "NIC",
    "Packet",
    "Port",
    "Topology",
    "UDPHeader",
    "flow_key",
    "ipv4_checksum",
    "source_key",
]
