"""The wire-level packet object shared by all device models.

A :class:`Packet` owns immutable wire bytes plus simulation metadata
(ingress timestamps, flow identity for the Reorder Engine, an id for
tracing).  Convenience constructors build full Ethernet/IPv4/UDP frames,
and :meth:`parse_udp` recovers the header stack.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional, Tuple

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    HeaderError,
    IPv4Header,
    UDPHeader,
)

__all__ = ["Packet", "reset_packet_ids"]

_packet_ids = itertools.count()


def reset_packet_ids() -> None:
    """Restart the process-global packet-id stream.

    Ids only need to be unique and increasing *within* one
    :class:`~repro.sim.Environment` (the Reorder Engine compares them
    per flow), but they are drawn from a process-wide stream, so their
    absolute values depend on everything that ran earlier in the
    process.  Sweep harnesses call this before each independent point
    so observability captures name packets identically whether points
    run serially or in worker processes.
    """
    global _packet_ids
    _packet_ids = itertools.count()

#: Packed Ethernet/IPv4/UDP header stacks keyed by the full field tuple.
#: Identical constructor arguments always pack to identical wire bytes
#: (identification is fixed at 0, the checksum is deterministic), so the
#: hot senders that emit many same-shape frames skip re-packing.
_header_cache: Dict[Tuple, bytes] = {}


class Packet:
    """An Ethernet frame plus simulation metadata.

    Attributes:
        data: full wire bytes of the frame.
        packet_id: monotonically increasing id for tracing / reordering.
        flow_key: hashable flow identity; packets with equal flow keys must
            be delivered in arrival order (enforced by Trio's Reorder
            Engine).
        meta: free-form dict used by models to annotate packets (ingress
            time, ingress port, etc.).
    """

    __slots__ = ("data", "packet_id", "flow_key", "meta", "_udp")

    def __init__(self, data: bytes, flow_key: Any = None,
                 meta: Optional[Dict[str, Any]] = None):
        self.data = bytes(data)
        self.packet_id = next(_packet_ids)
        self.flow_key = flow_key
        self.meta: Dict[str, Any] = dict(meta) if meta else {}
        self._udp: Optional[Tuple[EthernetHeader, IPv4Header, UDPHeader,
                                  bytes]] = None

    def __len__(self) -> int:
        return len(self.data)

    @property
    def bits(self) -> int:
        """Frame size in bits (used for serialisation delay)."""
        return len(self.data) * 8

    def copy(self) -> "Packet":
        """A fresh packet (new id) with the same bytes and flow key."""
        clone = Packet(self.data, flow_key=self.flow_key, meta=dict(self.meta))
        clone._udp = self._udp
        return clone

    def split(self, head_size: int) -> Tuple[bytes, bytes]:
        """Split wire bytes into (head, tail) as Trio's PFE hardware does.

        The head is the first ``head_size`` bytes (or the whole frame when
        shorter); the tail is whatever remains.
        """
        if head_size <= 0:
            raise ValueError(f"head_size must be positive, got {head_size}")
        return self.data[:head_size], self.data[head_size:]

    # ------------------------------------------------------------------
    # Construction and parsing helpers
    # ------------------------------------------------------------------

    @classmethod
    def udp(
        cls,
        src_mac: MACAddress,
        dst_mac: MACAddress,
        src_ip: IPv4Address,
        dst_ip: IPv4Address,
        src_port: int,
        dst_port: int,
        payload: bytes,
        ttl: int = 64,
    ) -> "Packet":
        """Build a complete Ethernet/IPv4/UDP frame around ``payload``."""
        key = (int(src_mac), int(dst_mac), int(src_ip), int(dst_ip),
               src_port, dst_port, len(payload), ttl)
        headers = _header_cache.get(key)
        if headers is None:
            udp = UDPHeader(
                src_port=src_port, dst_port=dst_port,
                length=UDPHeader.LENGTH + len(payload),
            )
            ip = IPv4Header(
                src=src_ip,
                dst=dst_ip,
                total_length=IPv4Header.MIN_LENGTH + udp.length,
                ttl=ttl,
            )
            ether = EthernetHeader(
                dst=dst_mac, src=src_mac, ethertype=ETHERTYPE_IPV4
            )
            headers = ether.pack() + ip.pack() + udp.pack()
            if len(_header_cache) > 4096:
                _header_cache.clear()
            _header_cache[key] = headers
        flow_key = (key[2], key[3], src_port, dst_port)
        return cls(headers + payload, flow_key=flow_key)

    def parse_ethernet(self) -> Tuple[EthernetHeader, bytes]:
        """Parse the Ethernet header; returns (header, rest)."""
        return EthernetHeader.parse(self.data)

    def parse_udp(self) -> Tuple[EthernetHeader, IPv4Header, UDPHeader, bytes]:
        """Parse the full Ethernet/IPv4/UDP stack; returns headers + payload.

        Raises :class:`~repro.net.headers.HeaderError` if any layer is not
        what it claims to be.

        The wire bytes are immutable, so the parsed stack is cached: every
        model that inspects the same frame reuses one parse.
        """
        cached = self._udp
        if cached is not None:
            return cached
        ether, rest = EthernetHeader.parse(self.data)
        if ether.ethertype != ETHERTYPE_IPV4:
            raise HeaderError(
                f"not an IPv4 frame (ethertype={ether.ethertype:#06x})"
            )
        ip, rest = IPv4Header.parse(rest)
        udp, rest = UDPHeader.parse(rest)
        payload = rest[: udp.length - UDPHeader.LENGTH]
        self._udp = result = (ether, ip, udp, payload)
        return result

    def __repr__(self) -> str:
        return f"<Packet id={self.packet_id} len={len(self.data)}>"
