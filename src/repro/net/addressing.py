"""MAC and IPv4 address value types.

Both types are thin immutable wrappers over integers with parsing and
formatting helpers, so headers can pack them into wire format without
string munging at the hot path.
"""

from __future__ import annotations

from typing import Union

__all__ = ["MACAddress", "IPv4Address"]


class MACAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, value: Union[int, str, "MACAddress"]):
        if isinstance(value, MACAddress):
            self._value = value._value
            return
        if isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"malformed MAC address: {value!r}")
            try:
                octets = [int(part, 16) for part in parts]
            except ValueError:
                raise ValueError(f"malformed MAC address: {value!r}") from None
            if any(octet < 0 or octet > 0xFF for octet in octets):
                raise ValueError(f"malformed MAC address: {value!r}")
            accum = 0
            for octet in octets:
                accum = (accum << 8) | octet
            self._value = accum
            return
        if isinstance(value, int):
            if value < 0 or value > self.BROADCAST_VALUE:
                raise ValueError(f"MAC address out of range: {value:#x}")
            self._value = value
            return
        raise TypeError(f"cannot build MACAddress from {type(value).__name__}")

    @classmethod
    def broadcast(cls) -> "MACAddress":
        """The all-ones broadcast address ff:ff:ff:ff:ff:ff."""
        return cls(cls.BROADCAST_VALUE)

    @property
    def is_broadcast(self) -> bool:
        return self._value == self.BROADCAST_VALUE

    @property
    def is_multicast(self) -> bool:
        """True if the group bit (LSB of the first octet) is set."""
        return bool((self._value >> 40) & 0x01)

    def __int__(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "MACAddress":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        # 6 wire bytes are always in range: skip __init__'s type dispatch.
        addr = object.__new__(cls)
        addr._value = int.from_bytes(data, "big")
        return addr

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MACAddress):
            return self._value == other._value
        if isinstance(other, (int, str)):
            return self._value == MACAddress(other)._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    def __str__(self) -> str:
        raw = self._value.to_bytes(6, "big")
        return ":".join(f"{octet:02x}" for octet in raw)

    def __repr__(self) -> str:
        return f"MACAddress('{self}')"


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: Union[int, str, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self._value = value._value
            return
        if isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address: {value!r}")
            try:
                octets = [int(part, 10) for part in parts]
            except ValueError:
                raise ValueError(f"malformed IPv4 address: {value!r}") from None
            if any(octet < 0 or octet > 255 for octet in octets):
                raise ValueError(f"malformed IPv4 address: {value!r}")
            accum = 0
            for octet in octets:
                accum = (accum << 8) | octet
            self._value = accum
            return
        if isinstance(value, int):
            if value < 0 or value > 0xFFFFFFFF:
                raise ValueError(f"IPv4 address out of range: {value:#x}")
            self._value = value
            return
        raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @property
    def is_multicast(self) -> bool:
        """True for 224.0.0.0/4 (class D) addresses."""
        return (self._value >> 28) == 0xE

    def __int__(self) -> int:
        return self._value

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @classmethod
    def from_bytes(cls, data: bytes) -> "IPv4Address":
        if len(data) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(data)}")
        # 4 wire bytes are always in range: skip __init__'s type dispatch.
        addr = object.__new__(cls)
        addr._value = int.from_bytes(data, "big")
        return addr

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        if isinstance(other, (int, str)):
            return self._value == IPv4Address(other)._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))

    def __str__(self) -> str:
        raw = self._value.to_bytes(4, "big")
        return ".".join(str(octet) for octet in raw)

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"
