"""Float ↔ int32 gradient conversion (ATP's scaling approach, §4).

In-network aggregation hardware adds integers, so workers multiply each
float32 gradient by a scaling factor and round to int32; receivers divide
the aggregated sum back down.  The scaling factor must be large enough to
preserve precision and small enough that the sum over all workers cannot
overflow 32 bits.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

__all__ = ["GradientQuantizer"]

_INT32_MAX = 2**31 - 1


class GradientQuantizer:
    """Symmetric fixed-scale quantizer for gradient vectors."""

    def __init__(self, scale: float = 1e6, num_workers: int = 6):
        """``scale`` converts floats to integer ticks; ``num_workers``
        bounds how many contributions may be summed without overflow."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self.scale = float(scale)
        self.num_workers = num_workers
        #: Largest float magnitude a single worker may contribute.
        self.max_magnitude = _INT32_MAX / (scale * num_workers)

    def quantize(self, gradients: Sequence[float]) -> List[int]:
        """Convert float gradients to int32 ticks (clipping to the safe
        range so an all-worker sum cannot overflow)."""
        array = np.asarray(gradients, dtype=np.float64)
        clipped = np.clip(array, -self.max_magnitude, self.max_magnitude)
        ticks = np.rint(clipped * self.scale).astype(np.int64)
        return [int(t) for t in ticks]

    def dequantize(self, ticks: Sequence[int]) -> List[float]:
        """Convert aggregated int32 ticks back to a float sum."""
        return [t / self.scale for t in ticks]

    def dequantize_mean(self, ticks: Sequence[int],
                        contributors: int) -> List[float]:
        """Aggregated ticks -> per-worker mean gradient.

        ``contributors`` is the number of sources that actually
        contributed (``src_cnt`` from a possibly degraded Result, §5).
        """
        if contributors < 1:
            raise ValueError(f"contributors must be >= 1, got {contributors}")
        factor = self.scale * contributors
        return [t / factor for t in ticks]

    def roundtrip_error(self, gradients: Sequence[float]) -> float:
        """Max absolute quantisation error over ``gradients`` (for tests)."""
        ticks = self.quantize(gradients)
        restored = self.dequantize(ticks)
        array = np.asarray(gradients, dtype=np.float64)
        clipped = np.clip(array, -self.max_magnitude, self.max_magnitude)
        return float(np.max(np.abs(clipped - np.asarray(restored))))
