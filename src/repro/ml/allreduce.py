"""Communication-time models for the three allreduce systems of §6.

These closed-form models drive the training-level experiments (Figures 12
and 13), where simulating every one of the ~25 M gradient packets of a
ResNet50 iteration at packet level is infeasible.  Constants are either
from the testbed description (100 Gbps links) or calibrated goodputs
documented below; the *packet-level* simulations (Figures 14–16) are the
ground truth, and :mod:`repro.collectives.calibrate` derives the goodput
constants from them and asserts the hand values below stay within the
calibration band (``python -m repro.collectives.calibrate``).
"""

from __future__ import annotations

__all__ = [
    "LINK_BANDWIDTH_BPS",
    "SWITCHML_GOODPUT_BPS",
    "TRIOML_GOODPUT_BPS",
    "ideal_allreduce_time",
    "ring_allreduce_time",
    "switchml_allreduce_time",
    "trioml_allreduce_time",
]

#: Testbed NICs and router/switch ports (§6.1).
LINK_BANDWIDTH_BPS = 100e9

#: Effective per-worker goodput of SwitchML-256 with DPDK (calibration:
#: 256-gradient ~1 KB packets, DPDK framing overhead, and the PyTorch
#: integration copy costs put the open-source client well below line
#: rate; chosen so the p=0 endpoints of Figure 13 land in proportion —
#: SwitchML a modest constant above Trio-ML at every model size).
SWITCHML_GOODPUT_BPS = 25e9

#: Effective per-worker goodput of Trio-ML (calibration: 4 KB packets
#: with DPDK end hosts; chosen so the p=0 Trio-ML line of Figure 13 sits
#: just above Ideal for every model, as in the paper).
TRIOML_GOODPUT_BPS = 45e9

#: Protocol efficiency of NCCL ring allreduce over RDMA.
RING_EFFICIENCY = 0.90


def ring_allreduce_time(model_bytes: int, num_workers: int,
                        bandwidth_bps: float = LINK_BANDWIDTH_BPS,
                        efficiency: float = RING_EFFICIENCY) -> float:
    """Bandwidth-optimal ring allreduce: each worker sends and receives
    ``2 (N-1)/N`` times the model size."""
    if num_workers < 2:
        return 0.0
    volume_bits = 2 * (num_workers - 1) / num_workers * model_bytes * 8
    return volume_bits / (bandwidth_bps * efficiency)


def ideal_allreduce_time(model_bytes: int, num_workers: int) -> float:
    """The paper's Ideal baseline: NCCL ring over RDMA, no stragglers."""
    return ring_allreduce_time(model_bytes, num_workers)


def in_network_allreduce_time(model_bytes: int,
                              goodput_bps: float) -> float:
    """In-network aggregation: every worker streams the model up once and
    receives the aggregate once; send and receive overlap, so the wire
    time is one model transfer at the achieved goodput."""
    return model_bytes * 8 / goodput_bps


def switchml_allreduce_time(model_bytes: int,
                            goodput_bps: float = SWITCHML_GOODPUT_BPS
                            ) -> float:
    """SwitchML-256 with the DPDK backend (§6.1)."""
    return in_network_allreduce_time(model_bytes, goodput_bps)


def trioml_allreduce_time(model_bytes: int,
                          goodput_bps: float = TRIOML_GOODPUT_BPS) -> float:
    """Trio-ML with 1024-gradient packets and window 4096 (§6.1)."""
    return in_network_allreduce_time(model_bytes, goodput_bps)
