"""Data-parallel training loop with per-system straggler semantics.

Each iteration every worker computes for ``model.compute_time_s`` plus any
straggle delays, then the gradients are aggregated:

* **Ideal** — NCCL ring allreduce, stragglers never injected (§6.1):
  ``iteration = compute + ring_time``.
* **SwitchML** — the slot completes only when every worker contributes,
  so the whole job waits for the slowest worker:
  ``iteration = max_w(compute + delay_w) + switchml_time``.
* **Trio-ML** — blocks whose straggler contribution is missing age out
  after the timeout and complete partially, so non-straggling workers
  wait at most the straggler-detection bound (≤ 2× the timeout, Figure
  14) instead of the full straggle:
  ``iteration = compute + trio_time + min(max_delay, mitigation_bound)``.

The mitigation bound defaults to 1.5× the detection timeout — the mean of
the [1×, 2×] detection window the timer-thread scheme guarantees — and
can be set from packet-level measurements.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ml.allreduce import (
    ideal_allreduce_time,
    switchml_allreduce_time,
    trioml_allreduce_time,
)
from repro.ml.models import DNNModel
from repro.ml.stragglers import SlowWorkerPattern

__all__ = ["DataParallelTrainer", "IterationRecord", "TrainingConfig"]

SYSTEMS = ("ideal", "switchml", "trioml")


@dataclass
class TrainingConfig:
    """One training run's setup (§6.1 defaults)."""

    model: DNNModel
    system: str
    num_workers: int = 6
    straggle_probability: float = 0.0
    #: Trio-ML straggler-detection timeout (§6.1: 10 ms).
    timeout_s: float = 0.010
    #: Expected extra wait when a block ages out: detection lands in
    #: [1x, 2x] the timeout, so 1.5x on average (validated by Figure 14).
    mitigation_factor: float = 1.5
    seed: int = 0
    #: Half-width of the uniform per-iteration GPU compute jitter band
    #: (0.05 = ±5%).  0 keeps the calibrated deterministic compute time.
    compute_jitter: float = 0.0

    def __post_init__(self):
        if self.system not in SYSTEMS:
            raise ValueError(
                f"unknown system {self.system!r}; expected one of {SYSTEMS}"
            )
        if self.num_workers < 2:
            raise ValueError("need at least two workers for allreduce")
        if self.compute_jitter < 0.0:
            raise ValueError(
                f"compute_jitter must be non-negative: {self.compute_jitter}"
            )

    @property
    def typical_iteration_s(self) -> float:
        """Iteration time with no stragglers under this system."""
        return self.model.compute_time_s + self.allreduce_time_s

    @property
    def allreduce_time_s(self) -> float:
        model_bytes = self.model.size_bytes
        if self.system == "ideal":
            return ideal_allreduce_time(model_bytes, self.num_workers)
        if self.system == "switchml":
            return switchml_allreduce_time(model_bytes)
        return trioml_allreduce_time(model_bytes)


@dataclass
class IterationRecord:
    """Timing of one training iteration."""

    index: int
    duration_s: float
    straggle_delays: Dict[int, float] = field(default_factory=dict)
    mitigated: bool = False

    @property
    def max_delay_s(self) -> float:
        return max(self.straggle_delays.values(), default=0.0)


class DataParallelTrainer:
    """Runs iterations under one system's aggregation semantics."""

    def __init__(self, config: TrainingConfig, env=None):
        """``env``: optionally derive all random streams from a
        :class:`repro.sim.Environment`'s seed tree (``env.rng_stream``)
        instead of ``config.seed`` directly, so one simulation-wide seed
        controls both packet-level and training-loop randomness."""
        self.config = config
        # The straggle magnitude is relative to the model's *typical*
        # iteration time (§6.1), which we take from the Ideal system so
        # all three systems face identically distributed slowdowns.
        ideal = TrainingConfig(
            model=config.model, system="ideal",
            num_workers=config.num_workers,
        )
        self._typical_s = ideal.typical_iteration_s
        if env is not None:
            pattern_rng = env.rng_stream(f"straggle/{config.seed}")
            self._compute_rng = env.rng_stream(f"compute/{config.seed}")
        else:
            pattern_rng = None  # the pattern seeds itself from config.seed
            self._compute_rng = random.Random(f"compute/{config.seed}")
        self.pattern = SlowWorkerPattern(
            probability=config.straggle_probability,
            num_workers=config.num_workers,
            typical_iteration_s=self._typical_s,
            seed=config.seed,
            rng=pattern_rng,
        )
        self.records: List[IterationRecord] = []

    @property
    def mitigation_bound_s(self) -> float:
        return self.config.mitigation_factor * self.config.timeout_s

    def run(self, num_iterations: int) -> List[IterationRecord]:
        """Simulate ``num_iterations``; returns (and stores) the records."""
        config = self.config
        jitter = config.compute_jitter
        comm = config.allreduce_time_s
        records = []
        for index in range(num_iterations):
            compute = config.model.sample_compute_time(
                self._compute_rng, jitter
            )
            if config.system == "ideal":
                delays: Dict[int, float] = {}
            else:
                delays = self.pattern.sample_iteration()
            max_delay = max(delays.values(), default=0.0)
            mitigated = False
            if config.system == "switchml":
                # Every slot needs every worker: the job absorbs the
                # slowest worker's full delay.
                duration = compute + max_delay + comm
            elif config.system == "trioml":
                if max_delay > 0:
                    # Straggling blocks age out; everyone else proceeds
                    # after the detection bound.  The straggler drops its
                    # stale blocks and rejoins (§5).
                    mitigation = min(max_delay, self.mitigation_bound_s)
                    duration = compute + comm + mitigation
                    mitigated = True
                else:
                    duration = compute + comm
            else:
                duration = compute + comm
            record = IterationRecord(
                index=index,
                duration_s=duration,
                straggle_delays=delays,
                mitigated=mitigated,
            )
            records.append(record)
        self.records.extend(records)
        return records

    def average_iteration_s(self, num_iterations: int = 100) -> float:
        """Mean iteration time over a fresh run of ``num_iterations``
        (the paper reports the average of the first 100 iterations)."""
        records = self.run(num_iterations)
        return sum(r.duration_s for r in records) / len(records)
