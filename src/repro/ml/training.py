"""Data-parallel training loop over pluggable collective backends.

Each iteration every worker computes for ``model.compute_time_s`` plus any
straggle delays, then the gradients are aggregated.  *Which* aggregation
system runs — and what a straggler costs under it — is entirely the
:class:`repro.collectives.CollectiveBackend` resolved from
``TrainingConfig.system``; the loop itself has no per-system branches.
The paper's three systems (§6.1):

* **Ideal** — NCCL ring allreduce, stragglers never injected:
  ``iteration = compute + ring_time``.
* **SwitchML** — the slot completes only when every worker contributes,
  so the whole job waits for the slowest worker:
  ``iteration = max_w(compute + delay_w) + switchml_time``.
* **Trio-ML** — blocks whose straggler contribution is missing age out
  after the timeout and complete partially, so non-straggling workers
  wait at most the straggler-detection bound (≤ 2× the timeout, Figure
  14) instead of the full straggle:
  ``iteration = compute + trio_time + min(max_delay, mitigation_bound)``.

The mitigation bound defaults to 1.5× the detection timeout — the mean of
the [1×, 2×] detection window the timer-thread scheme guarantees — and
can be set from packet-level measurements.

New systems plug in through the registry (see
:func:`repro.collectives.register_backend`); anything registered is
immediately usable as a ``TrainingConfig.system`` value and shows up in
the harness sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.collectives import CollectiveBackend, get_backend
from repro.ml.models import DNNModel
from repro.ml.stragglers import SlowWorkerPattern
from repro.obs import bus as _obs

__all__ = ["DataParallelTrainer", "IterationRecord", "TrainingConfig"]


@dataclass
class TrainingConfig:
    """One training run's setup (§6.1 defaults).

    ``system`` is resolved case-insensitively against the collective-
    backend registry and normalised to the backend's canonical name;
    anything :func:`repro.collectives.available_backends` lists is valid.
    """

    model: DNNModel
    system: str
    num_workers: int = 6
    straggle_probability: float = 0.0
    #: Trio-ML straggler-detection timeout (§6.1: 10 ms).
    timeout_s: float = 0.010
    #: Expected extra wait when a block ages out: detection lands in
    #: [1x, 2x] the timeout, so 1.5x on average (validated by Figure 14).
    mitigation_factor: float = 1.5
    seed: int = 0
    #: Half-width of the uniform per-iteration GPU compute jitter band
    #: (0.05 = ±5%).  0 keeps the calibrated deterministic compute time.
    compute_jitter: float = 0.0

    def __post_init__(self):
        # Raises UnknownBackendError (a ValueError) with the live list
        # of registered backends on a bad name.
        self.system = get_backend(self.system).name
        if self.num_workers < 2:
            raise ValueError("need at least two workers for allreduce")
        if self.compute_jitter < 0.0:
            raise ValueError(
                f"compute_jitter must be non-negative: {self.compute_jitter}"
            )

    @property
    def backend(self) -> CollectiveBackend:
        """The collective backend this run aggregates through."""
        return get_backend(self.system)

    @property
    def typical_iteration_s(self) -> float:
        """Iteration time with no stragglers under this system."""
        return self.backend.typical_iteration_s(self.model, self.num_workers)

    @property
    def allreduce_time_s(self) -> float:
        return self.backend.allreduce_time_s(
            self.model.size_bytes, self.num_workers
        )


@dataclass
class IterationRecord:
    """Timing of one training iteration."""

    index: int
    duration_s: float
    straggle_delays: Dict[int, float] = field(default_factory=dict)
    mitigated: bool = False

    @property
    def max_delay_s(self) -> float:
        return max(self.straggle_delays.values(), default=0.0)


class DataParallelTrainer:
    """Runs iterations under one backend's aggregation semantics."""

    def __init__(self, config: TrainingConfig, env=None):
        """``env``: optionally derive all random streams from a
        :class:`repro.sim.Environment`'s seed tree (``env.rng_stream``)
        instead of ``config.seed`` directly, so one simulation-wide seed
        controls both packet-level and training-loop randomness."""
        self.config = config
        self.backend = config.backend
        # The straggle magnitude is relative to the model's *typical*
        # iteration time (§6.1), which we take from the Ideal backend so
        # every system faces identically distributed slowdowns.
        self._typical_s = get_backend("ideal").typical_iteration_s(
            config.model, config.num_workers
        )
        if env is not None:
            pattern_rng = env.rng_stream(f"straggle/{config.seed}")
            self._compute_rng = env.rng_stream(f"compute/{config.seed}")
        else:
            pattern_rng = None  # the pattern seeds itself from config.seed
            self._compute_rng = random.Random(f"compute/{config.seed}")
        self.pattern = SlowWorkerPattern(
            probability=config.straggle_probability,
            num_workers=config.num_workers,
            typical_iteration_s=self._typical_s,
            seed=config.seed,
            rng=pattern_rng,
        )
        self.records: List[IterationRecord] = []
        #: Synthetic trainer clock: iteration durations laid end to end,
        #: giving the per-iteration phase spans a timeline to live on.
        self._obs_clock = 0.0

    @property
    def mitigation_bound_s(self) -> float:
        return self.config.mitigation_factor * self.config.timeout_s

    def run(self, num_iterations: int) -> List[IterationRecord]:
        """Simulate ``num_iterations``; returns (and stores) the records."""
        config = self.config
        backend = self.backend
        jitter = config.compute_jitter
        comm = config.allreduce_time_s
        bound = self.mitigation_bound_s
        injects = backend.injects_stragglers
        iteration_duration = backend.iteration_duration
        sample_compute = config.model.sample_compute_time
        sample_delays = self.pattern.sample_iteration
        # Hoisted once: iterations stay observability-free when disabled.
        obs = _obs.session()
        track = f"train/{config.system}"
        records = []
        for index in range(num_iterations):
            compute = sample_compute(self._compute_rng, jitter)
            delays: Dict[int, float] = sample_delays() if injects else {}
            duration, mitigated = iteration_duration(
                compute, comm, delays, mitigation_bound_s=bound
            )
            records.append(IterationRecord(
                index=index,
                duration_s=duration,
                straggle_delays=delays,
                mitigated=mitigated,
            ))
            if obs is not None:
                start = self._obs_clock
                obs.complete(f"compute {index}", start, start + compute,
                             track=track)
                obs.complete(f"aggregate {index}", start + compute,
                             start + duration, track=track,
                             mitigated=mitigated)
                obs.observe("ml.iteration_s", duration,
                            system=config.system)
                obs.probe("ml.iterations", system=config.system,
                          mitigated=mitigated)
                self._obs_clock = start + duration
        self.records.extend(records)
        return records

    def average_iteration_s(self, num_iterations: int = 100) -> float:
        """Mean iteration time over a fresh run of ``num_iterations``
        (the paper reports the average of the first 100 iterations)."""
        records = self.run(num_iterations)
        return sum(r.duration_s for r in records) / len(records)
