"""The "Slow Worker Pattern" straggler generator (§6.1).

Following FlexRR (Harlap et al., SoCC'16), each iteration has three
possible delay points.  At each point, with probability *p* one of the
workers decides to slow down; a straggling worker sleeps for a duration
chosen uniformly at random between 0.5× and 2× the *typical* iteration
time (the model's average iteration time with no stragglers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["SlowWorkerPattern", "StraggleEvent"]

#: Delay points per iteration (§6.1).
DELAY_POINTS = 3
#: Slowdown duration bounds as multiples of the typical iteration time.
SLOWDOWN_MIN = 0.5
SLOWDOWN_MAX = 2.0


@dataclass
class StraggleEvent:
    """One worker slowdown at one delay point."""

    worker: int
    delay_point: int
    duration_s: float


class SlowWorkerPattern:
    """Samples per-iteration straggle delays for a worker group."""

    def __init__(self, probability: float, num_workers: int,
                 typical_iteration_s: float, seed: int = 0,
                 rng: Optional[random.Random] = None):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1]: {probability}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        if typical_iteration_s <= 0:
            raise ValueError(
                f"typical iteration time must be positive: {typical_iteration_s}"
            )
        self.probability = probability
        self.num_workers = num_workers
        self.typical_iteration_s = typical_iteration_s
        # An explicit rng (e.g. Environment.rng_stream(...)) wins over
        # the seed, letting callers tie the pattern to a sim seed tree.
        self._rng = rng if rng is not None else random.Random(seed)
        self.events: List[StraggleEvent] = []

    def sample_iteration(self) -> Dict[int, float]:
        """Delays for one iteration: worker index -> total sleep seconds."""
        delays: Dict[int, float] = {}
        for point in range(DELAY_POINTS):
            if self._rng.random() >= self.probability:
                continue
            worker = self._rng.randrange(self.num_workers)
            duration = self._rng.uniform(
                SLOWDOWN_MIN, SLOWDOWN_MAX
            ) * self.typical_iteration_s
            delays[worker] = delays.get(worker, 0.0) + duration
            self.events.append(
                StraggleEvent(worker=worker, delay_point=point,
                              duration_s=duration)
            )
        return delays

    @property
    def expected_delay_per_iteration_s(self) -> float:
        """Analytic mean of the summed straggle time per iteration."""
        mean_duration = (SLOWDOWN_MIN + SLOWDOWN_MAX) / 2
        return (
            DELAY_POINTS * self.probability * mean_duration
            * self.typical_iteration_s
        )
