"""The DNN model zoo (Table 1).

Sizes, batch sizes, and dataset come straight from Table 1.  Per-iteration
GPU compute times and accuracy-curve parameters are calibration values:
the paper does not publish them directly, so they are fitted to make the
Ideal (no-straggler NCCL) iteration times land where Figure 13's Ideal
lines sit (ResNet50 ≈ 95 ms, DenseNet161 ≈ 240 ms, VGG11 ≈ 560 ms on six
A100 workers with 100 Gbps links).  EXPERIMENTS.md records the
calibration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["DNNModel", "MODEL_ZOO"]


@dataclass(frozen=True)
class DNNModel:
    """One training workload."""

    name: str
    #: Gradient/model size in megabytes (Table 1).
    size_mb: int
    #: Per-GPU batch size (Table 1).
    batch_size: int
    dataset: str
    #: GPU compute (forward+backward) per iteration, seconds.  Calibrated.
    compute_time_s: float
    #: Top-5 validation accuracy the training curve saturates at.
    max_accuracy: float
    #: Top-5 accuracy at iteration zero (random-ish init).
    initial_accuracy: float
    #: Target validation accuracy used for time-to-accuracy (Figure 12).
    target_accuracy: float
    #: Iterations at which the *paper-shaped* curve crosses the target.
    target_iterations: int

    @property
    def size_bytes(self) -> int:
        return self.size_mb * 1024 * 1024

    @property
    def num_gradients(self) -> int:
        """Number of float32 parameters."""
        return self.size_bytes // 4

    def sample_compute_time(self, rng: Optional[random.Random] = None,
                            jitter: float = 0.0) -> float:
        """One iteration's GPU compute time, with optional jitter.

        ``jitter`` is the half-width of a uniform multiplicative band
        around :attr:`compute_time_s` (0.05 = ±5%).  Draws come from the
        caller-supplied ``rng`` — pass a stream from
        ``Environment.rng_stream`` so runs stay reproducible; with no
        jitter (the calibrated default) the result is exact and no rng
        is needed.
        """
        if jitter < 0.0:
            raise ValueError(f"jitter must be non-negative: {jitter}")
        if jitter == 0.0:
            return self.compute_time_s
        if rng is None:
            raise ValueError("jitter requires a seeded rng stream")
        return self.compute_time_s * rng.uniform(1.0 - jitter, 1.0 + jitter)

    def __str__(self) -> str:
        return self.name


#: Table 1, plus calibrated timing/accuracy parameters.
MODEL_ZOO: Dict[str, DNNModel] = {
    "resnet50": DNNModel(
        name="ResNet50",
        size_mb=98,
        batch_size=64,
        dataset="ImageNet",
        compute_time_s=0.082,
        max_accuracy=93.0,
        initial_accuracy=20.0,
        target_accuracy=90.0,
        target_iterations=150_000,
    ),
    "vgg11": DNNModel(
        name="VGG11",
        size_mb=507,
        batch_size=128,
        dataset="ImageNet",
        compute_time_s=0.490,
        max_accuracy=89.0,
        initial_accuracy=20.0,
        target_accuracy=80.0,
        target_iterations=52_000,
    ),
    "densenet161": DNNModel(
        name="DenseNet161",
        size_mb=109,
        batch_size=64,
        dataset="ImageNet",
        compute_time_s=0.225,
        max_accuracy=93.5,
        initial_accuracy=20.0,
        target_accuracy=90.0,
        target_iterations=88_000,
    ),
}
