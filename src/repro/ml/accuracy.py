"""Validation-accuracy curves and time-to-accuracy (Figure 12).

The paper trains to a top-5 validation accuracy target; the quantity it
reports is the *wall-clock* time at which each system's run crosses the
target.  Since all systems run the same SGD (in-network aggregation is
numerically equivalent up to quantisation), accuracy is a function of the
iteration count alone, and the time-to-accuracy ratio between systems
reduces to their iteration-time ratio.  We model the accuracy curve as a
saturating exponential fitted through the model's calibrated
``target_iterations`` (see :mod:`repro.ml.models`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

from repro.ml.models import DNNModel

__all__ = ["AccuracyCurve"]


@dataclass
class AccuracyCurve:
    """Top-5 accuracy as a saturating exponential in the iteration count.

    ``acc(i) = max - (max - initial) * exp(-i / tau)`` with ``tau`` chosen
    so that ``acc(target_iterations) == target_accuracy``.
    """

    model: DNNModel

    def __post_init__(self):
        m = self.model
        gap_total = m.max_accuracy - m.initial_accuracy
        gap_target = m.max_accuracy - m.target_accuracy
        if gap_total <= 0 or gap_target <= 0 or gap_target >= gap_total:
            raise ValueError(
                f"inconsistent accuracy parameters for {m.name}"
            )
        self.tau = m.target_iterations / math.log(gap_total / gap_target)

    def accuracy_at(self, iteration: float) -> float:
        """Top-5 validation accuracy after ``iteration`` iterations."""
        if iteration < 0:
            raise ValueError(f"negative iteration: {iteration}")
        m = self.model
        return m.max_accuracy - (
            m.max_accuracy - m.initial_accuracy
        ) * math.exp(-iteration / self.tau)

    def iterations_to(self, accuracy: float) -> float:
        """Iterations needed to reach ``accuracy`` (must be below max)."""
        m = self.model
        if not m.initial_accuracy <= accuracy < m.max_accuracy:
            raise ValueError(
                f"accuracy {accuracy} outside "
                f"[{m.initial_accuracy}, {m.max_accuracy})"
            )
        gap_total = m.max_accuracy - m.initial_accuracy
        gap = m.max_accuracy - accuracy
        return self.tau * math.log(gap_total / gap)

    def time_to_accuracy_s(self, accuracy: float,
                           iteration_time_s: float) -> float:
        """Wall-clock seconds to reach ``accuracy`` at a constant
        per-iteration time."""
        if iteration_time_s <= 0:
            raise ValueError(
                f"iteration time must be positive: {iteration_time_s}"
            )
        return self.iterations_to(accuracy) * iteration_time_s

    def curve(self, iteration_time_s: float, until_accuracy: float,
              points: int = 60) -> List[Tuple[float, float]]:
        """(minutes, accuracy) samples up to ``until_accuracy`` — the
        series a Figure 12 panel plots."""
        total_iters = self.iterations_to(until_accuracy)
        samples = []
        for k in range(points + 1):
            iteration = total_iters * k / points
            samples.append(
                (iteration * iteration_time_s / 60.0,
                 self.accuracy_at(iteration))
            )
        return samples
