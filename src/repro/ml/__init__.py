"""Distributed ML training workload models (§6.1, §6.2).

* :mod:`repro.ml.models` — the DNN model zoo of Table 1 with calibrated
  per-iteration compute times and accuracy-curve parameters.
* :mod:`repro.ml.gradients` — ATP-style float ↔ int32 gradient scaling.
* :mod:`repro.ml.stragglers` — the "Slow Worker Pattern" straggler
  generator (three delay points per iteration, probability *p*, slowdown
  uniform in [0.5, 2] × the typical iteration time).
* :mod:`repro.ml.allreduce` — communication-time models: NCCL-style ring
  allreduce (the Ideal baseline), SwitchML, and Trio-ML in-network
  aggregation.
* :mod:`repro.ml.training` — the data-parallel training loop producing
  per-iteration timings under each system's semantics, resolved through
  the pluggable :mod:`repro.collectives` backend registry.
* :mod:`repro.ml.accuracy` — validation-accuracy curves and
  time-to-accuracy computation.
"""

from repro.ml.models import DNNModel, MODEL_ZOO
from repro.ml.gradients import GradientQuantizer
from repro.ml.stragglers import SlowWorkerPattern
from repro.ml.allreduce import (
    ideal_allreduce_time,
    ring_allreduce_time,
    switchml_allreduce_time,
    trioml_allreduce_time,
)
from repro.ml.training import DataParallelTrainer, IterationRecord, TrainingConfig
from repro.ml.accuracy import AccuracyCurve

__all__ = [
    "AccuracyCurve",
    "DNNModel",
    "DataParallelTrainer",
    "GradientQuantizer",
    "IterationRecord",
    "MODEL_ZOO",
    "SlowWorkerPattern",
    "TrainingConfig",
    "ideal_allreduce_time",
    "ring_allreduce_time",
    "switchml_allreduce_time",
    "trioml_allreduce_time",
]
