"""SwitchML packet format.

A SwitchML aggregation packet is UDP-encapsulated with a small header
identifying the pool slot, the chunk (offset) of model gradients it
carries, and the sending worker, followed by the int32 gradient values
(converted from float by scaling, as both SwitchML and ATP do).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

from repro.microcode.layout import StructLayout

__all__ = [
    "SWITCHML_UDP_PORT",
    "SwitchMLHeader",
    "decode_switchml",
    "encode_switchml",
]

SWITCHML_UDP_PORT = 11000

#: Wire layout of the SwitchML header (12 bytes).
SWITCHML_HEADER_LAYOUT = StructLayout(
    "switchml_hdr_t",
    [
        ("pool_index", 16),   # slot in the aggregation pool
        ("worker_id", 8),     # sender
        ("num_workers", 8),   # expected contributors
        ("chunk_id", 32),     # which model chunk these gradients are
        ("grad_cnt", 16),     # gradients in this packet
        ("is_result", 1),     # switch -> worker result packet
        (None, 15),           # pad to byte alignment
    ],
)


@dataclass
class SwitchMLHeader:
    """Parsed SwitchML header fields."""

    pool_index: int
    worker_id: int
    num_workers: int
    chunk_id: int
    grad_cnt: int
    is_result: bool = False

    def pack(self) -> bytes:
        return SWITCHML_HEADER_LAYOUT.pack(
            pool_index=self.pool_index,
            worker_id=self.worker_id,
            num_workers=self.num_workers,
            chunk_id=self.chunk_id,
            grad_cnt=self.grad_cnt,
            is_result=int(self.is_result),
        )

    @classmethod
    def unpack(cls, data: bytes) -> "SwitchMLHeader":
        fields = SWITCHML_HEADER_LAYOUT.unpack(data)
        return cls(
            pool_index=fields["pool_index"],
            worker_id=fields["worker_id"],
            num_workers=fields["num_workers"],
            chunk_id=fields["chunk_id"],
            grad_cnt=fields["grad_cnt"],
            is_result=bool(fields["is_result"]),
        )

    SIZE = SWITCHML_HEADER_LAYOUT.size_bytes


def encode_switchml(header: SwitchMLHeader, gradients: List[int]) -> bytes:
    """Build the UDP payload: header + little-endian int32 gradients."""
    if len(gradients) != header.grad_cnt:
        raise ValueError(
            f"header says {header.grad_cnt} gradients, got {len(gradients)}"
        )
    wrapped = [g & 0xFFFFFFFF for g in gradients]
    return header.pack() + struct.pack(f"<{len(wrapped)}I", *wrapped)


def decode_switchml(payload: bytes) -> Tuple[SwitchMLHeader, List[int]]:
    """Parse a SwitchML UDP payload into (header, signed int32 gradients)."""
    header = SwitchMLHeader.unpack(payload[: SwitchMLHeader.SIZE])
    body = payload[SwitchMLHeader.SIZE:
                   SwitchMLHeader.SIZE + 4 * header.grad_cnt]
    if len(body) != 4 * header.grad_cnt:
        raise ValueError(
            f"payload truncated: expected {4 * header.grad_cnt} gradient "
            f"bytes, got {len(body)}"
        )
    unsigned = struct.unpack(f"<{header.grad_cnt}I", body)
    gradients = [
        value - 0x1_0000_0000 if value >= 0x8000_0000 else value
        for value in unsigned
    ]
    return header, gradients
