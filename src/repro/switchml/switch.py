"""The SwitchML aggregation program on the PISA pipeline.

Aggregation state is a pool of slots spread over per-stage register
arrays: stage 0 holds the per-slot contribution count and worker bitmap;
the remaining stages hold the gradient value registers (at most
``StageContext.MAX_ACCESSES_PER_STAGE`` per stage, as on hardware).  A
64-gradient slot just fits one 12-stage pipeline; 256 gradients require
chaining four pipelines, each owning a 64-gradient segment — matching the
paper's observation that SwitchML-256 "consumes the resources of all four
pipelines" (§6.1).

Semantics (the part Figures 12/13 hinge on): a slot produces its result
only when **all** ``num_workers`` have contributed.  There are no timers
— nothing happens between packets — so a straggling worker stalls its
slots indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import HeaderError
from repro.net.packet import Packet
from repro.obs import bus as _obs
from repro.pisa.pipeline import P4Program, PassResult, StageContext
from repro.pisa.tofino import TofinoSwitch
from repro.sim import Environment
from repro.switchml.protocol import (
    SWITCHML_UDP_PORT,
    SwitchMLHeader,
    decode_switchml,
    encode_switchml,
)

__all__ = ["SwitchMLJob", "SwitchMLProgram", "build_switchml_switch"]

#: Egress-hint prefix routing a packet into the next pipeline of a chain.
CHAIN_PREFIX = "__chain__"


@dataclass
class SwitchMLJob:
    """Control-plane configuration shared by all pipelines of one job."""

    num_workers: int
    pool_size: int
    grads_per_packet: int
    #: worker_id -> (ip, mac); used to unicast result packets.
    workers: Dict[int, Tuple[IPv4Address, MACAddress]] = field(
        default_factory=dict
    )
    switch_ip: IPv4Address = IPv4Address("10.0.0.254")
    switch_mac: MACAddress = MACAddress(0xFE)
    #: Ordered pipeline indices forming the aggregation chain.
    chain: List[int] = field(default_factory=lambda: [0])

    def add_worker(self, worker_id: int, ip: IPv4Address,
                   mac: MACAddress) -> None:
        if worker_id >= 32:
            raise ValueError("worker bitmap register is 32 bits wide")
        self.workers[worker_id] = (IPv4Address(ip), MACAddress(mac))

    @property
    def segment_size(self) -> int:
        """Gradients handled per pipeline of the chain."""
        return self.grads_per_packet // len(self.chain)


class SwitchMLProgram(P4Program):
    """One pipeline's share of the SwitchML aggregation job."""

    name = "switchml"

    def __init__(self, job: SwitchMLJob, chain_position: int):
        super().__init__()
        self.job = job
        self.chain_position = chain_position
        self.is_first = chain_position == 0
        self.is_last = chain_position == len(job.chain) - 1
        segment = job.segment_size
        if job.grads_per_packet % len(job.chain) != 0:
            raise ValueError(
                "gradients per packet must divide evenly across the chain"
            )
        self.grad_offset = chain_position * segment
        self.segment_size = segment
        self.results_emitted = 0
        self.duplicates_dropped = 0
        #: Slot -> open timestamp of slots waiting on more contributions.
        self._slot_open_ts: Dict[int, float] = {}

    def on_install(self, pipeline) -> None:
        if self.is_first and _obs.enabled():
            _obs.register_collector(self._obs_collect)
        pool = self.job.pool_size
        stage = 0
        accesses_left = StageContext.MAX_ACCESSES_PER_STAGE
        if self.is_first:
            self.count_reg = self.register("count", stage, pool)
            self.bitmap_reg = self.register("bitmap", stage, pool)
            accesses_left -= 2
        self.value_regs = []
        for k in range(self.segment_size):
            if accesses_left == 0:
                stage += 1
                accesses_left = StageContext.MAX_ACCESSES_PER_STAGE
            self.value_regs.append(
                self.register(f"value_{k}", stage, pool)
            )
            accesses_left -= 1

    # ------------------------------------------------------------------

    def process(self, ctx: StageContext, packet: Packet,
                pass_index: int) -> PassResult:
        try:
            __, ip, udp, payload = packet.parse_udp()
        except HeaderError:
            return PassResult(emit=[(packet, None)])  # plain L3 traffic
        if udp.dst_port != SWITCHML_UDP_PORT:
            return PassResult(emit=[(packet, None)])
        header, gradients = decode_switchml(payload)
        if header.is_result:
            return PassResult(emit=[(packet, None)])
        slot = header.pool_index % self.job.pool_size

        complete = packet.meta.get("switchml_complete", False)
        if self.is_first:
            ctx.stage(0)
            num_workers = self.job.num_workers
            bit = 1 << header.worker_id
            old_bitmap, __ = ctx.read_modify_write(
                self.bitmap_reg, slot, lambda old: old | bit
            )
            if old_bitmap & bit:
                # Duplicate contribution (retransmission): ignore it.
                self.duplicates_dropped += 1
                return PassResult(dropped=True)
            old_count, __ = ctx.read_modify_write(
                self.count_reg, slot,
                lambda old: 0 if old + 1 >= num_workers else old + 1,
            )
            complete = old_count + 1 >= num_workers
            if complete:
                # The completing packet recycles the slot (the open-source
                # design achieves this with two alternating pools).
                self.bitmap_reg.write_raw(slot, 0)
            packet.meta["switchml_complete"] = complete
            packet.meta.setdefault("switchml_result", {})
            obs = _obs.session()
            if obs is not None:
                now = self.pipeline.env.now
                if old_bitmap == 0:
                    self._slot_open_ts[slot] = now
                if complete:
                    opened = self._slot_open_ts.pop(slot, now)
                    obs.complete(f"slot {slot}", opened, now,
                                 track="switchml/slots",
                                 pool_index=header.pool_index)
                    obs.observe("switchml.slot_fill_s", now - opened)
                    obs.probe("switchml.results")
                obs.sample("switchml.slots_stalled", now,
                           len(self._slot_open_ts))

        # Aggregate this pipeline's gradient segment.
        result_values = packet.meta.get("switchml_result", {})
        for k, reg in enumerate(self.value_regs):
            ctx.stage(reg.stage)
            grad_index = self.grad_offset + k
            contribution = gradients[grad_index] & 0xFFFFFFFF
            if complete:
                old, __ = ctx.read_modify_write(
                    reg, slot, lambda old: 0
                )
                result_values[grad_index] = (old + contribution) & 0xFFFFFFFF
            else:
                ctx.read_modify_write(
                    reg, slot,
                    lambda old, c=contribution: (old + c) & 0xFFFFFFFF,
                )

        if not self.is_last:
            next_pipe = self.job.chain[self.chain_position + 1]
            return PassResult(emit=[(packet, f"{CHAIN_PREFIX}{next_pipe}")])
        if not complete:
            return PassResult(dropped=True)
        return PassResult(emit=self._build_results(header, result_values))

    def _obs_collect(self, registry) -> None:
        """Export the program's counters (runs once at finalize)."""
        pipe = str(self.chain_position)
        registry.counter(
            "switchml.results_emitted", "completed pool slots", ("pipeline",)
        ).inc(self.results_emitted, pipeline=pipe)
        registry.counter(
            "switchml.duplicates_dropped", "retransmissions ignored",
            ("pipeline",)
        ).inc(self.duplicates_dropped, pipeline=pipe)
        registry.gauge(
            "switchml.slots_stalled",
            "slots still waiting on a contribution at finalize",
            ("pipeline",)
        ).set(len(self._slot_open_ts), pipeline=pipe)

    def _build_results(self, header: SwitchMLHeader,
                       result_values: Dict[int, int]
                       ) -> List[Tuple[Packet, Optional[str]]]:
        """Unicast the aggregated chunk back to every worker."""
        self.results_emitted += 1
        gradients = [
            result_values[i] - 0x1_0000_0000
            if result_values[i] >= 0x8000_0000 else result_values[i]
            for i in range(self.job.grads_per_packet)
        ]
        result_header = SwitchMLHeader(
            pool_index=header.pool_index,
            worker_id=0xFF,
            num_workers=self.job.num_workers,
            chunk_id=header.chunk_id,
            grad_cnt=self.job.grads_per_packet,
            is_result=True,
        )
        payload = encode_switchml(result_header, gradients)
        out = []
        for __, (ip, mac) in sorted(self.job.workers.items()):
            out.append((
                Packet.udp(
                    src_mac=self.job.switch_mac,
                    dst_mac=mac,
                    src_ip=self.job.switch_ip,
                    dst_ip=ip,
                    src_port=SWITCHML_UDP_PORT,
                    dst_port=SWITCHML_UDP_PORT,
                    payload=payload,
                ),
                None,
            ))
        return out


def build_switchml_switch(
    env: Environment,
    job: SwitchMLJob,
    **switch_kwargs,
) -> Tuple[TofinoSwitch, List[SwitchMLProgram]]:
    """Construct a Tofino switch with the job's pipelines programmed.

    Pipelines named in ``job.chain`` each get their own
    :class:`SwitchMLProgram` instance handling one gradient segment;
    chain hops are wired through the switch's loopback path.
    """
    switch = TofinoSwitch(env, **switch_kwargs)
    programs: List[SwitchMLProgram] = []
    for position, pipe_index in enumerate(job.chain):
        program = SwitchMLProgram(job, chain_position=position)
        switch.install(pipe_index, program)
        programs.append(program)

    original_emit = switch._emit

    def emit(packet: Packet, egress: Optional[str]) -> None:
        if egress is not None and egress.startswith(CHAIN_PREFIX):
            next_pipe = int(egress[len(CHAIN_PREFIX):])
            switch.pipelines[next_pipe].submit(packet)
            return
        original_emit(packet, egress)

    for pipeline in switch.pipelines:
        pipeline.set_emit_handler(emit)
    return switch, programs
