"""SwitchML baseline: in-network aggregation on PISA/Tofino.

Re-implements the aggregation protocol of Sapio et al. (NSDI'21) — the
state-of-the-art baseline the paper compares against (§6) — on our PISA
pipeline model:

* a pool of aggregation *slots* held in per-stage register arrays;
* workers self-clock on slot results: the pool size is the window;
* a slot completes only when **every** worker has contributed — there is
  no timer, so one straggling worker stalls the slot (and, transitively,
  the whole pool), which is the semantic root of Figures 12 and 13;
* SwitchML-64 (64 gradients/packet, one pipeline) and SwitchML-256
  (256 gradients/packet, requires chaining all four pipelines).
"""

from repro.switchml.protocol import (
    SWITCHML_UDP_PORT,
    SwitchMLHeader,
    decode_switchml,
    encode_switchml,
)
from repro.switchml.switch import SwitchMLProgram, build_switchml_switch
from repro.switchml.worker import SwitchMLWorker

__all__ = [
    "SWITCHML_UDP_PORT",
    "SwitchMLHeader",
    "SwitchMLProgram",
    "SwitchMLWorker",
    "build_switchml_switch",
    "decode_switchml",
    "encode_switchml",
]
