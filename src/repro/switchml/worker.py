"""SwitchML end-host worker.

Mirrors the open-source SwitchML client integrated with PyTorch through
DPDK (§6.1): the model's gradient vector is split into fixed-size chunks,
one chunk per packet; the pool size is the streaming window; a worker may
only reuse a slot after receiving that slot's result, which self-clocks
the stream.  Retransmission is disabled, as in the paper's experiments.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import HeaderError
from repro.net.host import Host
from repro.sim import Environment
from repro.switchml.protocol import (
    SWITCHML_UDP_PORT,
    SwitchMLHeader,
    decode_switchml,
    encode_switchml,
)
from repro.switchml.switch import SwitchMLJob

__all__ = ["SwitchMLWorker"]


class SwitchMLWorker(Host):
    """One training worker speaking the SwitchML protocol."""

    def __init__(
        self,
        env: Environment,
        name: str,
        worker_id: int,
        job: SwitchMLJob,
        mac: MACAddress,
        ip: IPv4Address,
        straggle_hook: Optional[Callable[[int], float]] = None,
        retransmit_timeout_s: Optional[float] = None,
    ):
        """``straggle_hook(chunk_id)`` may return a delay in seconds to
        sleep before sending that chunk (straggler injection).

        ``retransmit_timeout_s`` enables SwitchML's loss-recovery
        retransmission (the open-source client uses 1 ms).  §6.1 disables
        it in the paper's experiments because a straggling worker makes
        every other worker's outstanding chunks look lost, flooding the
        switch with spurious retransmissions.
        """
        super().__init__(env, name=name, mac=mac, ip=ip)
        self.worker_id = worker_id
        self.job = job
        self.straggle_hook = straggle_hook
        self.retransmit_timeout_s = retransmit_timeout_s
        self.retransmissions = 0
        self.chunks_sent = 0
        self.results_received = 0

    def allreduce(self, gradients: List[int]):
        """Aggregate ``gradients`` with the other workers via the switch.

        Process generator: run with ``env.process(worker.allreduce(g))``;
        the process's value is the aggregated gradient list.
        """
        per_packet = self.job.grads_per_packet
        chunks: List[List[int]] = []
        for start in range(0, len(gradients), per_packet):
            chunk = list(gradients[start:start + per_packet])
            if len(chunk) < per_packet:
                chunk.extend([0] * (per_packet - len(chunk)))  # pad tail
            chunks.append(chunk)
        results: List[Optional[List[int]]] = [None] * len(chunks)
        pending = len(chunks)
        next_to_send = 0
        send_times: dict = {}
        done = {"flag": False}

        if self.retransmit_timeout_s:
            self.env.process(
                self._retransmit_loop(chunks, results, send_times, done),
                name=f"{self.name}:retx",
            )

        window = min(self.job.pool_size, len(chunks))
        for __ in range(window):
            send_times[next_to_send] = self.env.now
            yield from self._send_chunk(next_to_send, chunks[next_to_send])
            next_to_send += 1

        while pending:
            packet = yield self.recv()
            try:
                __, __, udp, payload = packet.parse_udp()
            except HeaderError:
                continue
            if udp.dst_port != SWITCHML_UDP_PORT:
                continue
            header, values = decode_switchml(payload)
            if not header.is_result or header.chunk_id >= len(chunks):
                continue
            if results[header.chunk_id] is not None:
                continue  # duplicate result
            results[header.chunk_id] = values
            self.results_received += 1
            pending -= 1
            if next_to_send < len(chunks):
                send_times[next_to_send] = self.env.now
                yield from self._send_chunk(next_to_send, chunks[next_to_send])
                next_to_send += 1

        done["flag"] = True
        aggregated: List[int] = []
        for chunk_result in results:
            aggregated.extend(chunk_result)
        return aggregated[: len(gradients)]

    def _retransmit_loop(self, chunks, results, send_times, done):
        """Re-send chunks whose result is overdue (SwitchML loss recovery).

        Without switch-side timers, the worker cannot distinguish a lost
        packet from a slot stalled on a straggler — so during straggling
        periods this loop retransmits chunks that were never lost (§6.1).
        """
        timeout = self.retransmit_timeout_s
        while not done["flag"]:
            yield self.env.delay(timeout)
            now = self.env.now
            for chunk_id, sent_at in list(send_times.items()):
                if results[chunk_id] is None and now - sent_at >= timeout:
                    self.retransmissions += 1
                    send_times[chunk_id] = now
                    yield from self._send_chunk(chunk_id, chunks[chunk_id])

    def _send_chunk(self, chunk_id: int, values: List[int]):
        if self.straggle_hook is not None:
            delay = self.straggle_hook(chunk_id)
            if delay and delay > 0:
                yield self.env.delay(delay)
        header = SwitchMLHeader(
            pool_index=chunk_id % self.job.pool_size,
            worker_id=self.worker_id,
            num_workers=self.job.num_workers,
            chunk_id=chunk_id,
            grad_cnt=len(values),
        )
        payload = encode_switchml(header, values)
        self.chunks_sent += 1
        yield self.send_udp(
            dst_mac=self.job.switch_mac,
            dst_ip=self.job.switch_ip,
            src_port=SWITCHML_UDP_PORT,
            dst_port=SWITCHML_UDP_PORT,
            payload=payload,
        )
