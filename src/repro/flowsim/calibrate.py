"""Calibration bridge: pin the fluid level to the packet level.

The hybrid simulation is only trustworthy if the fast level agrees with
the slow one where their domains overlap.  This module runs matched
pairs of simulations — the same flows once through the
:class:`~repro.flowsim.engine.FluidEngine` and once through the real
packet-level :mod:`repro.net` stack — and asserts the flow-level FCT
and goodput land inside a declared band of the packet-level truth.

Three cases, one per modelling regime:

* **pair** — a single uncontended flow.  Checks the closed-form FCT
  (framing-derated rate plus store-and-forward path latency) against a
  packet run of the same size and bandwidth.  This is the tightest
  band: the models differ only by one pipelined frame serialisation.
* **shared** — several long elastic flows into one host.  Checks that
  max-min fair share delivers the same *aggregate* goodput as FIFO
  packet interleaving over the same bottleneck.
* **incast** — a synchronised burst of short flows, crossing the
  escalation boundary.  Checks the end-to-end hybrid (part elastic,
  part pinned to packet-derived rates) against a pure packet run of the
  identical burst.  The widest band: escalated rates are derived from
  a *bucketed* reference, not this exact degree.

Run from the test suite and CI as
``python -m repro.flowsim.calibrate --werror``.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.flowsim import packetref
from repro.flowsim.engine import FluidEngine
from repro.flowsim.escalate import (
    EscalationConfig,
    EscalationPolicy,
    reset_reference_caches,
)
from repro.flowsim.flow import FlowRecord, FlowSpec
from repro.flowsim.scenario import ScenarioConfig, build_leaf_spine, host_name
from repro.sim import Environment

__all__ = [
    "PAIR_BAND",
    "SHARED_BAND",
    "INCAST_BAND",
    "CalibrationCase",
    "FlowCalibrationSpec",
    "calibrate",
    "main",
    "render_calibration",
]

#: Per-case hybrid/packet agreement bands (ratio).  The pair case is
#: near-exact by construction; the shared case differs only in how the
#: last frames drain; the incast case goes through the bucketed
#: escalation reference, so it inherits that quantisation.
PAIR_BAND = 1.10
SHARED_BAND = 1.15
INCAST_BAND = 1.8


@dataclass(frozen=True)
class FlowCalibrationSpec:
    """Sizing of the matched fluid/packet calibration runs.

    Small enough to run inside the test suite, large enough that both
    levels reach steady behaviour.  Both sides are deterministic
    discrete-event simulations, so the derived ratios are exactly
    reproducible.
    """

    bandwidth_bps: float = 100e9
    pair_flow_bytes: int = 200_000
    shared_senders: int = 6
    shared_flow_bytes: int = 300_000
    incast_senders: int = 12
    incast_flow_bytes: int = 40_000


@dataclass(frozen=True)
class CalibrationCase:
    """One matched fluid/packet measurement."""

    case: str
    #: What is being compared ("mean FCT (s)" or "goodput (bps)").
    quantity: str
    fluid_value: float
    packet_value: float
    band: float

    @property
    def ratio(self) -> float:
        """fluid / packet — 1.0 means the levels agree exactly."""
        return self.fluid_value / self.packet_value

    @property
    def within_band(self) -> bool:
        return 1.0 / self.band <= self.ratio <= self.band


def _run_fluid(specs: List[FlowSpec],
               bandwidth_bps: float,
               escalation: Optional[EscalationConfig] = None
               ) -> List[FlowRecord]:
    """Run explicit flows through the fluid engine on a one-leaf fabric."""
    reset_reference_caches()
    env = Environment()
    fabric = ScenarioConfig(
        leaves=1, hosts_per_leaf=16,
        host_bandwidth_bps=bandwidth_bps,
        uplink_bandwidth_bps=4 * bandwidth_bps,
    )
    topology = build_leaf_spine(env, fabric)
    policy = EscalationPolicy(escalation or EscalationConfig())
    engine = FluidEngine(env, topology, policy=policy)
    for spec in specs:
        env.call_at(spec.start_s, engine.start_flow, spec)
    env.run()
    return engine.records


def _mean_fct(records: List[FlowRecord]) -> float:
    return sum(record.fct_s for record in records) / len(records)


def calibrate(spec: Optional[FlowCalibrationSpec] = None
              ) -> Dict[str, CalibrationCase]:
    """Run all matched pairs; returns one record per case."""
    spec = spec or FlowCalibrationSpec()
    bw = spec.bandwidth_bps
    cases: Dict[str, CalibrationCase] = {}

    # -- pair: one flow, no contention ----------------------------------
    fluid = _run_fluid(
        [FlowSpec(flow_id=0, src=host_name(0, 0), dst=host_name(0, 1),
                  size_bytes=float(spec.pair_flow_bytes), start_s=0.0)],
        bw,
    )
    packet = packetref.packet_pair(spec.pair_flow_bytes, bandwidth_bps=bw)
    cases["pair"] = CalibrationCase(
        case="pair", quantity="mean FCT (s)",
        fluid_value=_mean_fct(fluid), packet_value=packet.mean_fct_s,
        band=PAIR_BAND,
    )

    # -- shared: elastic fair share over one bottleneck ------------------
    shared_specs = [
        FlowSpec(flow_id=index, src=host_name(0, 1 + index),
                 dst=host_name(0, 0),
                 size_bytes=float(spec.shared_flow_bytes), start_s=0.0)
        for index in range(spec.shared_senders)
    ]
    fluid = _run_fluid(shared_specs, bw)
    assert all(record.escalated is None for record in fluid), \
        "shared case must stay elastic"
    packet = packetref.packet_fan_in(
        spec.shared_senders, spec.shared_flow_bytes, bandwidth_bps=bw)
    total_bits = spec.shared_senders * spec.shared_flow_bytes * 8
    fluid_goodput = total_bits / max(r.finish_s for r in fluid)
    cases["shared"] = CalibrationCase(
        case="shared", quantity="aggregate goodput (bps)",
        fluid_value=fluid_goodput,
        packet_value=packet.aggregate_goodput_bps,
        band=SHARED_BAND,
    )

    # -- incast: the escalation boundary end to end ----------------------
    incast_specs = [
        FlowSpec(flow_id=index, src=host_name(0, 1 + index),
                 dst=host_name(0, 0),
                 size_bytes=float(spec.incast_flow_bytes), start_s=0.0,
                 service="incast")
        for index in range(spec.incast_senders)
    ]
    fluid = _run_fluid(incast_specs, bw)
    assert any(record.escalated == "incast" for record in fluid), \
        "incast case must cross the escalation boundary"
    packet = packetref.packet_fan_in(
        spec.incast_senders, spec.incast_flow_bytes, bandwidth_bps=bw)
    cases["incast"] = CalibrationCase(
        case="incast", quantity="mean FCT (s)",
        fluid_value=_mean_fct(fluid), packet_value=packet.mean_fct_s,
        band=INCAST_BAND,
    )
    return cases


def render_calibration(cases: Dict[str, CalibrationCase]) -> str:
    """The calibration report table."""
    lines = [
        "Calibration bridge: fluid level vs packet level",
        "-" * 72,
        f"{'case':<8} {'quantity':<24} {'fluid':>12} {'packet':>12} "
        f"{'ratio':>7}  band",
    ]
    for record in cases.values():
        status = "ok" if record.within_band else "OUT OF BAND"
        lines.append(
            f"{record.case:<8} {record.quantity:<24} "
            f"{record.fluid_value:>12.4g} {record.packet_value:>12.4g} "
            f"{record.ratio:>6.2f}x  [{1 / record.band:.2f}x, "
            f"{record.band:.2f}x] {status}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flowsim.calibrate",
        description="Run matched fluid/packet simulations and check the "
                    "flow level stays inside the calibration band.",
    )
    parser.add_argument(
        "--werror", action="store_true",
        help="exit non-zero when any case falls outside its band",
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="also write the report to PATH (CI artifact)",
    )
    args = parser.parse_args(argv)
    cases = calibrate()
    report = render_calibration(cases)
    out_of_band = [c.case for c in cases.values() if not c.within_band]
    if out_of_band:
        report += f"\n\nout of band: {', '.join(out_of_band)}"
    else:
        report += "\n\nall cases within the calibration band"
    print(report)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report + "\n")
    if out_of_band:
        return 1 if args.werror else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
