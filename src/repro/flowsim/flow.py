"""Flow objects for the fluid (flow-level) simulation layer.

A :class:`FlowSpec` describes what the workload wants — who talks to
whom, how many payload bytes, when — and a :class:`FlowRecord` is what
the engine reports once the flow finishes: completion time, goodput,
and whether the flow was escalated to the packet level (and why).

Sizes are *payload* bytes throughout; the engine derates link capacity
by the Ethernet/IPv4/UDP framing efficiency so flow-level goodput is
comparable with what a packet-level run delivers to the application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = ["FlowRecord", "FlowSpec", "FRAME_OVERHEAD_BYTES",
           "DEFAULT_MTU_PAYLOAD_BYTES", "wire_efficiency"]

#: Ethernet (14) + IPv4 (20) + UDP (8) header bytes per frame — the
#: framing :meth:`repro.net.packet.Packet.udp` puts on the wire.
FRAME_OVERHEAD_BYTES = 42

#: Payload bytes per full-sized frame used by the fluid level's framing
#: model and by the packet-level reference scenarios, so both levels
#: carry identical per-frame overhead.
DEFAULT_MTU_PAYLOAD_BYTES = 1458


def wire_efficiency(payload_bytes: int = DEFAULT_MTU_PAYLOAD_BYTES) -> float:
    """Fraction of link bandwidth available to payload at this framing."""
    return payload_bytes / (payload_bytes + FRAME_OVERHEAD_BYTES)


@dataclass(frozen=True)
class FlowSpec:
    """One flow the workload asks for.

    ``service`` tags the flow for the escalation policy: ``"bulk"``
    flows stay at flow level unless a structural trigger (incast
    fan-in) fires; ``"aggregation"`` flows traverse a PFE hash-table
    path and escalate on contention.
    """

    flow_id: int
    src: str
    dst: str
    size_bytes: float
    start_s: float
    service: str = "bulk"

    def __post_init__(self):
        if self.size_bytes <= 0:
            raise ValueError(f"flow size must be positive: {self.size_bytes}")
        if self.start_s < 0:
            raise ValueError(f"negative start time: {self.start_s}")


@dataclass
class FlowRecord:
    """What the engine reports for one finished flow."""

    spec: FlowSpec
    #: Simulated completion instant (seconds).
    finish_s: float
    #: Flow completion time including the fixed path latency.
    fct_s: float
    #: Application goodput over the flow's lifetime (bps).
    goodput_bps: float
    #: Packet-level escalation, if any: None, or the policy's reason
    #: string ("incast", "straggler", "pfe-hash").
    escalated: Optional[str] = None

    @property
    def flow_id(self) -> int:
        return self.spec.flow_id


@dataclass
class ActiveFlow:
    """Mutable per-flow engine state (internal to the engine).

    Progress accounting lives on the flow's *path class*, not here: the
    engine tracks one cumulative served-bits curve per class and a
    per-class heap of member completion targets, so per-flow state is
    written only on admission, on a class rate change, and on
    completion.  ``remaining_bits`` therefore holds the flow's initial
    size until it finishes (the class curve is authoritative), and the
    rate last pushed through the link/host hooks is ``rate_bps`` itself
    — write-backs are skipped per class, not per flow.
    """

    spec: FlowSpec
    #: Directed-link keys (see the engine) the flow occupies, in path
    #: order.  Doubles as the flow's path-class signature.
    links: Tuple[int, ...]
    remaining_bits: float
    #: Fixed latency added to the recorded FCT: propagation plus one
    #: MTU store-and-forward serialisation per hop.
    latency_s: float
    rate_bps: float = 0.0
    #: The telemetry dicts (per-direction link occupancy, endpoint
    #: tx/rx tables) this flow's solved rate is written into, resolved
    #: once at admission so a rate write-back is one dict store per
    #: cell instead of method calls through the topology.
    rate_cells: list = field(default_factory=list)
    #: Escalation state: reason string, or None while at flow level.
    escalated: Optional[str] = None
    #: Escalation group key (e.g. the incast destination) used to
    #: recompute packet-derived rates as group membership changes.
    group: Optional[Tuple[str, str]] = None
    #: Extra metadata the policy wants to keep (degree at escalation...).
    meta: dict = field(default_factory=dict)
