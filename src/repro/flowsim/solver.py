"""Max-min fair-share bandwidth allocation (progressive filling).

The fluid level models every long-lived flow as a rate, not a packet
stream.  Given the set of active flows and the directed link capacities
they traverse, the classic water-filling algorithm yields the max-min
fair allocation: repeatedly find the most constrained link (smallest
equal share among its unfrozen flows), freeze every flow crossing it at
that share, subtract, and continue until all flows are frozen.

Two extensions the hybrid engine needs:

* **Pinned flows** — escalated segments carry a packet-derived rate the
  solver must respect, so pinned demand is subtracted from link
  capacity before the elastic flows share the remainder.
* **A rate floor** — when pinned demand saturates a link completely,
  the elastic flows crossing it would otherwise receive rate 0 and
  never finish; :data:`MIN_RATE_BPS` keeps the fluid system live (and
  is far below any rate that could influence a calibrated result).

Everything is deterministic: links are visited in key order, ties in
the bottleneck search resolve to the smallest link key, and the result
is a pure function of the inputs.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

__all__ = ["MIN_RATE_BPS", "max_min_rates"]

#: Floor on any allocated rate, so overload cannot stall the event loop.
MIN_RATE_BPS = 1e3


def max_min_rates(
    flow_links: Mapping[int, Sequence[int]],
    capacity_bps: Mapping[int, float],
    pinned_bps: Mapping[int, float] = {},
) -> Dict[int, float]:
    """Max-min fair rates for elastic flows over directed links.

    Args:
        flow_links: flow id -> the directed-link keys it traverses.
            Flows listed here are *elastic* (rate decided by fairness).
        capacity_bps: directed-link key -> capacity in bps.
        pinned_bps: directed-link key -> total demand already committed
            to pinned (escalated) flows on that link, subtracted from
            capacity before sharing.

    Returns:
        flow id -> allocated rate (bps), every flow >= MIN_RATE_BPS.
    """
    # remaining capacity and unfrozen-flow count per link
    remaining: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for flow_id, links in flow_links.items():
        for key in links:
            counts[key] = counts.get(key, 0) + 1
    for key, count in counts.items():
        cap = capacity_bps[key] - pinned_bps.get(key, 0.0)
        remaining[key] = cap if cap > 0.0 else 0.0

    rates: Dict[int, float] = {}
    unfrozen = dict(flow_links)
    while unfrozen:
        # The bottleneck link: smallest equal share among its flows.
        share = None
        for key, count in counts.items():
            if count <= 0:
                continue
            candidate = remaining[key] / count
            if share is None or candidate < share:
                share = candidate
        if share is None:
            # Remaining flows traverse only links with no unfrozen
            # counts — cannot happen by construction, but stay safe.
            for flow_id in unfrozen:
                rates[flow_id] = MIN_RATE_BPS
            break
        share = max(share, MIN_RATE_BPS)
        # Freeze every unfrozen flow crossing a link at (or numerically
        # below) the bottleneck share.
        threshold = share * (1.0 + 1e-12)
        frozen = [
            flow_id
            for flow_id, links in unfrozen.items()
            if any(
                counts[key] > 0 and remaining[key] / counts[key] <= threshold
                for key in links
            )
        ]
        if not frozen:
            # Numerical corner: nothing met the threshold (degenerate
            # capacities); freeze everything at the floor to terminate.
            frozen = list(unfrozen)
            share = MIN_RATE_BPS
        for flow_id in frozen:
            rates[flow_id] = share
            for key in unfrozen[flow_id]:
                counts[key] -= 1
                remaining[key] -= share
                if remaining[key] < 0.0:
                    remaining[key] = 0.0
            del unfrozen[flow_id]
    return rates
