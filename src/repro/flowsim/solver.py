"""Max-min fair-share bandwidth allocation (progressive filling).

The fluid level models every long-lived flow as a rate, not a packet
stream.  Given the set of active flows and the directed link capacities
they traverse, the classic water-filling algorithm yields the max-min
fair allocation: repeatedly find the most constrained link (smallest
equal share among its unfrozen flows), freeze every flow crossing it at
that share, subtract, and continue until all flows are frozen.

Two implementations share that semantics:

* :func:`max_min_rates` — the from-scratch per-flow reference.  It
  rebuilds the per-link state on every call and scans every unfrozen
  flow per water-filling iteration: O(flows x path length) per
  iteration.  Kept as the executable specification the property tests
  compare against.
* :class:`PathClassSolver` — the incremental *path-class* solver the
  engine uses.  Flows sharing an identical directed-link signature
  collapse into one variable carrying a multiplicity, so a solve runs
  over O(distinct paths) variables regardless of flow count; the
  bottleneck search is heap-based instead of a full per-iteration link
  scan; and per-link flow counts plus link->class membership stay alive
  across solves so arrivals/departures are O(path length) deltas.

The two are **bit-identical** — not merely approximately equal.  The
class-level freeze applies the same clamped-at-zero capacity
subtraction once per member flow (in a tight loop) rather than a fused
``mult * share`` multiply, because repeated float subtraction rounds
differently from a single multiply and the reference subtracts
per-flow.  Within one water-filling iteration every frozen flow
subtracts the *same* share, so the subtraction sequence on any link is
a fixed number of identical operations — order-independent — and the
class-grouped order reproduces the reference's flow-ordered result
exactly.  ``tests/test_flowsim.py`` enforces this on randomized
instances.

Two extensions the hybrid engine needs:

* **Pinned flows** — escalated segments carry a packet-derived rate the
  solver must respect, so pinned demand is subtracted from link
  capacity before the elastic flows share the remainder.
* **A rate floor** — when pinned demand saturates a link completely,
  the elastic flows crossing it would otherwise receive rate 0 and
  never finish; :data:`MIN_RATE_BPS` keeps the fluid system live (and
  is far below any rate that could influence a calibrated result).

Everything is deterministic: bottleneck ties resolve to the smallest
link index, the changed set fills in freeze order, and the result is a
pure function of the inputs.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "MIN_RATE_BPS",
    "PathClassSolver",
    "max_min_class_rates",
    "max_min_rates",
]

#: Floor on any allocated rate, so overload cannot stall the event loop.
MIN_RATE_BPS = 1e3

#: A path class's directed-link signature: the link keys in path order.
PathSig = Tuple[int, ...]


def max_min_rates(
    flow_links: Mapping[int, Sequence[int]],
    capacity_bps: Mapping[int, float],
    pinned_bps: Optional[Mapping[int, float]] = None,
) -> Dict[int, float]:
    """Max-min fair rates for elastic flows over directed links.

    Args:
        flow_links: flow id -> the directed-link keys it traverses.
            Flows listed here are *elastic* (rate decided by fairness).
        capacity_bps: directed-link key -> capacity in bps.
        pinned_bps: directed-link key -> total demand already committed
            to pinned (escalated) flows on that link, subtracted from
            capacity before sharing.  ``None`` means no pinned demand
            (a ``None`` sentinel, not a shared mutable ``{}`` default).

    Returns:
        flow id -> allocated rate (bps), every flow >= MIN_RATE_BPS.
    """
    if pinned_bps is None:
        pinned_bps = {}
    # remaining capacity and unfrozen-flow count per link
    remaining: Dict[int, float] = {}
    counts: Dict[int, int] = {}
    for flow_id, links in flow_links.items():
        for key in links:
            counts[key] = counts.get(key, 0) + 1
    for key, count in counts.items():
        cap = capacity_bps[key] - pinned_bps.get(key, 0.0)
        remaining[key] = cap if cap > 0.0 else 0.0

    rates: Dict[int, float] = {}
    unfrozen = dict(flow_links)
    while unfrozen:
        # The bottleneck link: smallest equal share among its flows.
        share = None
        for key, count in counts.items():
            if count <= 0:
                continue
            candidate = remaining[key] / count
            if share is None or candidate < share:
                share = candidate
        if share is None:
            # Remaining flows traverse only links with no unfrozen
            # counts — cannot happen by construction, but stay safe.
            for flow_id in unfrozen:
                rates[flow_id] = MIN_RATE_BPS
            break
        share = max(share, MIN_RATE_BPS)
        # Freeze every unfrozen flow crossing a link at (or numerically
        # below) the bottleneck share.
        threshold = share * (1.0 + 1e-12)
        frozen = [
            flow_id
            for flow_id, links in unfrozen.items()
            if any(
                counts[key] > 0 and remaining[key] / counts[key] <= threshold
                for key in links
            )
        ]
        if not frozen:
            # Numerical corner: nothing met the threshold (degenerate
            # capacities); freeze everything at the floor to terminate.
            frozen = list(unfrozen)
            share = MIN_RATE_BPS
        for flow_id in frozen:
            rates[flow_id] = share
            for key in unfrozen[flow_id]:
                counts[key] -= 1
                remaining[key] -= share
                if remaining[key] < 0.0:
                    remaining[key] = 0.0
            del unfrozen[flow_id]
    return rates


class PathClassSolver:
    """Incremental max-min solver over path classes.

    A *path class* is the set of flows sharing one directed-link
    signature; the solver carries one variable per class with an
    integer multiplicity.  Membership mutates through :meth:`add` /
    :meth:`remove` (O(path length) each), pinned per-link demand
    through :meth:`pin` deltas, and :meth:`solve` allocates from the
    live state without rebuilding it.

    Internally every link key is interned to a dense index on first
    sight, so the hot state is flat lists — per-index capacity, pinned
    demand, unfrozen-flow count, member-class set — rather than dicts;
    a solve's scratch state is two list copies, not dict rebuilds.

    The solve consumes a *sorted* seed list — one ``(share, link)``
    entry per live link, kept ascending across solves by every
    add/remove/pin delta — with an index pointer in place of heap pops:
    water-filling visits links in nondecreasing share order, so the
    bottleneck search is a plain walk, saturated links are the walked
    prefix at or below the freeze threshold, and a round's refreshed
    shares re-enter via ``bisect.insort`` at or after the pointer
    (refreshed shares cannot sort before links already frozen).  Stale
    entries — superseded by a later insert — are skipped on walk: an
    entry is current exactly when its share equals the link's live
    share.  This enumerates exactly the saturated set the reference
    implementation finds by scanning every link per iteration.

    Results are bit-identical to :func:`max_min_rates` called with the
    expanded per-flow inputs (see the module docstring for why).
    """

    __slots__ = ("_capacity", "_key2idx", "_idx2key", "_cap", "_pinned",
                 "_info", "_counts", "_members", "_nflows",
                 "_remaining0", "_sorted", "_shares", "_epoch", "changed")

    def __init__(self, capacity_bps: Mapping[int, float]):
        #: Live view of directed-link capacities; the engine grows it
        #: as new links are first traversed, and each key's capacity is
        #: captured when the key is first interned.
        self._capacity = capacity_bps
        self._key2idx: Dict[int, int] = {}
        self._idx2key: List[int] = []
        self._cap: List[float] = []
        self._pinned: List[float] = []
        #: class signature -> ``[member count, interned signature,
        #: freeze-epoch stamp, previous solved rate (None before the
        #: first solve)]``.  One record per class, shared by reference
        #: with every ``_members`` row it appears in, so the solve's
        #: freeze loop reads and writes all per-class state with zero
        #: extra dict lookups: frozen-this-solve is an epoch compare,
        #: and changed-since-last-solve is a compare against the
        #: record's own previous rate.
        self._info: Dict[PathSig, list] = {}
        #: dense index -> unfrozen flow-traversal count (one per
        #: occurrence of the link in a member's signature).
        self._counts: List[int] = []
        #: dense index -> insertion-ordered map of member class
        #: signature -> its shared ``_info`` record.
        self._members: List[Dict[PathSig, list]] = []
        self._nflows = 0
        #: dense index -> capacity minus pinned demand, clamped at 0 —
        #: the water-filling start state, maintained by deltas so a
        #: solve copies it instead of recomputing it.
        self._remaining0: List[float] = []
        #: Ascending (share, idx) seeds, exactly one per *live* link
        #: (count > 0), maintained sorted by every add/remove/pin
        #: delta; a solve starts from a plain C-speed list copy —
        #: no divisions, no sort, no heapify.
        self._sorted: List[Tuple[float, int]] = []
        #: dense index -> that link's live share, or -1.0 when it has
        #: no unfrozen flows.  A seed entry is *current* exactly when
        #: its share equals this value, so stale-entry detection is one
        #: list index instead of a division per visit.
        self._shares: List[float] = []
        #: Monotone solve counter; a class is frozen in the current
        #: solve exactly when its info record carries this stamp.
        self._epoch = 0
        #: Classes whose rate differed from the previous solve, in
        #: freeze order — the engine's write-back set, so unchanged
        #: classes cost nothing after the solve.
        self.changed: Dict[PathSig, float] = {}

    def _intern(self, key: int) -> int:
        idx = len(self._idx2key)
        self._key2idx[key] = idx
        self._idx2key.append(key)
        self._cap.append(self._capacity[key])
        self._pinned.append(0.0)
        self._counts.append(0)
        self._members.append({})
        self._remaining0.append(self._cap[idx])
        self._shares.append(-1.0)
        return idx

    def _reseed(self, idx: int) -> None:
        """Refresh the sorted solve-start seed for ``idx`` after a delta."""
        shares = self._shares
        old = shares[idx]
        if old != -1.0:
            self._sorted.pop(bisect_left(self._sorted, (old, idx)))
        count = self._counts[idx]
        if count > 0:
            share = self._remaining0[idx] / count
            shares[idx] = share
            insort(self._sorted, (share, idx))
        else:
            shares[idx] = -1.0

    # -- membership / demand deltas -------------------------------------

    def add(self, sig: PathSig, count: int = 1) -> None:
        """Add ``count`` flows with directed-link signature ``sig``."""
        info = self._info.get(sig)
        self._nflows += count
        counts = self._counts
        if info is None:
            # A class created (or re-created after dying) carries no
            # previous rate, so its first solve back always reports it
            # in ``changed``, whatever rate it gets.
            info = [count, (), 0, None]
            self._info[sig] = info
            key2idx = self._key2idx
            members = self._members
            idxs = []
            for key in sig:
                idx = key2idx.get(key)
                if idx is None:
                    idx = self._intern(key)
                idxs.append(idx)
                counts[idx] += count
                members[idx][sig] = info
                self._reseed(idx)
            info[1] = tuple(idxs)
        else:
            info[0] += count
            for idx in info[1]:
                counts[idx] += count
                self._reseed(idx)

    def remove(self, sig: PathSig, count: int = 1) -> None:
        """Remove ``count`` flows from the class with signature ``sig``."""
        info = self._info[sig]
        have = info[0] - count
        if have < 0:
            raise ValueError(
                f"removing {count} flows from class of {have + count}"
            )
        self._nflows -= count
        counts = self._counts
        idxs = info[1]
        if have:
            info[0] = have
            for idx in idxs:
                counts[idx] -= count
                self._reseed(idx)
        else:
            del self._info[sig]
            members = self._members
            for idx in idxs:
                counts[idx] -= count
                members[idx].pop(sig, None)
                self._reseed(idx)

    def pin(self, key: int, delta_bps: float) -> None:
        """Shift the inelastic (pinned) demand on ``key`` by a delta.

        Escalated flows' packet-derived rates accumulate here through
        arrivals, departures, and group-rate changes, so a solve reads
        pinned demand straight off the dense state instead of taking a
        freshly summed mapping per call.
        """
        idx = self._key2idx.get(key)
        if idx is None:
            idx = self._intern(key)
        self._pinned[idx] += delta_bps
        left = self._cap[idx] - self._pinned[idx]
        self._remaining0[idx] = left if left > 0.0 else 0.0
        self._reseed(idx)

    def pinned_demand(self, key: int) -> float:
        """Current pinned demand on link ``key`` (0.0 if never seen)."""
        idx = self._key2idx.get(key)
        return 0.0 if idx is None else self._pinned[idx]

    @property
    def num_classes(self) -> int:
        """Distinct path classes currently registered."""
        return len(self._info)

    @property
    def num_flows(self) -> int:
        """Total member flows across all classes."""
        return self._nflows

    # -- the solve -------------------------------------------------------

    def resolve(self) -> Dict[PathSig, float]:
        """Re-solve from the live state; return only the *changed* set.

        The engine's per-event entry point: runs the same water-filling
        as :meth:`solve` but skips materialising the full rates dict —
        each class's rate lands in its info record, and the return
        value (also left on :attr:`changed`) maps exactly the classes
        whose rate differs from the previous solve, in freeze order.
        """
        self._run(None)
        return self.changed

    def solve(self, pinned_bps: Optional[Mapping[int, float]] = None
              ) -> Dict[PathSig, float]:
        """Max-min fair rate per path class (every member gets it).

        ``pinned_bps`` overrides the accumulated :meth:`pin` state for
        this call: per-link inelastic demand subtracted from capacity
        before sharing, exactly as in :func:`max_min_rates`.  With the
        default ``None`` the solver's own pinned state applies.
        """
        self._run(pinned_bps)
        return {sig: info[3] for sig, info in self._info.items()}

    def _run(self, pinned_bps: Optional[Mapping[int, float]]) -> None:
        info_map = self._info
        changed: Dict[PathSig, float] = {}
        self.changed = changed
        self._epoch = epoch = self._epoch + 1
        if not info_map:
            return
        if pinned_bps is None:
            # Fast path: the sorted seed list and zero-round remaining
            # state are maintained by every add/remove/pin delta, so
            # starting a solve is four C-speed list copies — no
            # divisions, no sort.
            counts = self._counts[:]
            remaining = self._remaining0[:]
            lst = self._sorted[:]
            cur = self._shares[:]
        else:
            counts = self._counts[:]
            cap = self._cap
            n = len(counts)
            pinned = [pinned_bps.get(key, 0.0) for key in self._idx2key]
            remaining = [0.0] * n
            cur = [-1.0] * n
            lst = []
            entry = lst.append
            for idx in range(n):
                count = counts[idx]
                left = cap[idx] - pinned[idx]
                if left < 0.0:
                    left = 0.0
                remaining[idx] = left
                if count > 0:
                    share = left / count
                    cur[idx] = share
                    entry((share, idx))
            lst.sort()
        members = self._members
        min_rate = MIN_RATE_BPS
        pending = len(info_map)
        p = 0
        end = len(lst)
        while pending and p < end:
            # Bottleneck: the smallest *current* share.  An entry is
            # current exactly when its share equals ``cur[idx]`` (every
            # mutation refreshes ``cur``, and a link with no unfrozen
            # flows holds the -1.0 sentinel no entry can match); stale
            # copies superseded by a fresher insort are skipped by the
            # pointer walk.  Fresh entries always land at or after the
            # walk pointer (shares only grow across rounds up to ulp
            # rounding, and ``insort(..., lo=p)`` pins the floor), so
            # advancing ``p`` never skips a live link.
            share = -1.0
            while p < end:
                s, idx = lst[p]
                p += 1
                if s == cur[idx]:
                    share = s
                    break
            if share < 0.0:
                break
            if share < min_rate:
                share = min_rate
            threshold = share * (1.0 + 1e-12)
            # Freeze every class crossing a saturated link at the
            # share.  The freeze sweep only *tallies* frozen
            # occurrences per touched link; counts, the clamped
            # capacity drains (one subtraction per member flow, to
            # match the reference's per-flow rounding bit-for-bit),
            # ``cur``, and the fresh seed entries are all applied once
            # per unique link after the whole round.  Saturation is
            # judged against round-start shares throughout — exactly
            # the semantics of the reference's scan-then-subtract
            # round, and within a round every subtraction uses the
            # same share, so regrouping them per link is
            # order-independent.
            touched: Dict[int, int] = {}
            while True:
                for sig, info in members[idx].items():
                    if info[2] == epoch:
                        continue
                    info[2] = epoch
                    if info[3] != share:
                        info[3] = share
                        changed[sig] = share
                    pending -= 1
                    m = info[0]
                    for jdx in info[1]:
                        if jdx in touched:
                            touched[jdx] += m
                        else:
                            touched[jdx] = m
                # Next saturated link at (or numerically below) the
                # threshold; the list is sorted and every entry before
                # the pointer is consumed, so walking to the threshold
                # enumerates exactly the saturated set the reference
                # scans out.
                idx = -1
                while p < end and lst[p][0] <= threshold:
                    s, idx = lst[p]
                    p += 1
                    if s == cur[idx]:
                        break
                    idx = -1
                if idx < 0:
                    break
            for idx, drains in touched.items():
                counts[idx] = count = counts[idx] - drains
                left = remaining[idx]
                while drains:
                    left -= share
                    if left < 0.0:
                        left = 0.0
                        break
                    drains -= 1
                remaining[idx] = left
                if count > 0:
                    s = left / count
                    cur[idx] = s
                    insort(lst, (s, idx), p)
                    end += 1
                else:
                    cur[idx] = -1.0
        if pending:
            # Classes whose every link ran out of unfrozen counts (or
            # that traverse no links at all) get the liveness floor —
            # the reference's `share is None` branch.
            for sig, info in info_map.items():
                if info[2] != epoch:
                    info[2] = epoch
                    if info[3] != min_rate:
                        info[3] = min_rate
                        changed[sig] = min_rate


def max_min_class_rates(
    class_flows: Mapping[PathSig, int],
    capacity_bps: Mapping[int, float],
    pinned_bps: Optional[Mapping[int, float]] = None,
) -> Dict[PathSig, float]:
    """One-shot convenience: class signature+multiplicity -> fair rate.

    Builds a :class:`PathClassSolver`, registers every class, and runs
    a single solve.  Used by tests comparing the class-level result
    against the per-flow reference.
    """
    solver = PathClassSolver(capacity_bps)
    for sig, count in class_flows.items():
        solver.add(sig, count)
    return solver.solve(pinned_bps)
