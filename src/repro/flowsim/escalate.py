"""The escalation boundary between the flow level and the packet level.

The fluid engine is exact for long-lived, steady flows sharing links
fairly — precisely the regime where packet fidelity is wasted CPU.  It
is *wrong* where contention dynamics matter:

* **incast fan-in** — many synchronised flows converging on one host;
  queue-drain ordering and store-and-forward tails make measured FCTs
  worse than an equal-share rate predicts, especially for short flows;
* **straggler windows** — a host whose per-packet (DPDK-side) cost, not
  the wire, bounds its rate;
* **hash-table-contended PFE paths** — ``"aggregation"`` service flows
  that traverse a Trio PFE, whose goodput is set by PPE dispatch, hash
  contention, and the RMW complex, not by link fair share.

The :class:`EscalationPolicy` classifies flows at arrival into one of
these reasons (or none) and, for escalated flows, supplies a *pinned*
rate derived from a matched packet-level reference run
(:mod:`repro.flowsim.packetref`).  Pinned rates are recomputed on every
re-solve as group membership changes (an incast with 12 members is a
different packet-level system than one with 3) and enter the max-min
solver as inelastic demand; elastic flows share what remains.

Reference runs are memoised per bucket and executed with observability
suppressed (their internal timelines are unrelated to the outer
simulation); the caches are process-local and deterministic, so cache
hits can never change a result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.flowsim.flow import ActiveFlow, FlowSpec
from repro.flowsim import packetref
from repro.obs import bus as _obs

__all__ = [
    "EscalationConfig",
    "EscalationPolicy",
    "reset_reference_caches",
]


def reset_reference_caches() -> None:
    """Drop every memoised packet-level reference result.

    Sweep harnesses call this at the start of each independent point so
    a point's work is a pure function of its arguments in any process
    layout (the cached values are deterministic, so this is about
    keeping each point's *cost and side effects* identical too — packet
    ids drawn, reference simulations run — not its results).
    """
    packetref.packet_fan_in.cache_clear()
    packetref.packet_pair.cache_clear()
    packetref.packet_pfe_goodput.cache_clear()


def _degree_bucket(n: int, lo: int = 2, hi: int = 32) -> int:
    """Smallest power of two >= n, clamped to [lo, hi].

    Bucketing keeps the set of distinct packet-level reference runs
    small (and cacheable) while tracking the contention level that
    actually changes the measured behaviour.
    """
    bucket = lo
    while bucket < n and bucket < hi:
        bucket *= 2
    return bucket


@dataclass(frozen=True)
class EscalationConfig:
    """Declarative thresholds for the escalation boundary."""

    #: Fan-in (concurrent flows converging on one host) at or above
    #: which arriving flows are contention-critical.
    incast_degree: int = 8
    #: Flows larger than this stay fluid even inside an incast: a long
    #: flow's FCT is dominated by its steady share, which the fluid
    #: level already models.
    incast_max_flow_bytes: float = 256_000.0
    #: Hosts whose transmit side straggles (per-packet host cost).
    straggler_hosts: Tuple[str, ...] = ()
    #: The straggling host's per-packet cost, handed to the reference
    #: run (2 us/packet caps a 1458 B payload stream at ~5.8 Gbps).
    straggler_tx_overhead_s: float = 2e-6
    #: Concurrent ``"aggregation"`` flows at or above which the PFE
    #: hash path is considered contended.
    pfe_contention_threshold: int = 4
    #: Per-flow payload bytes of the incast/straggler reference runs.
    reference_flow_bytes: int = 20_000
    #: Fan-in at or above which ``"microburst"``-tagged flows (the
    #: traffic library's back-to-back fan-in trains) escalate.  Lower
    #: than the generic incast threshold: a microburst wave is all
    #: queue-drain transient, so the fluid model is wrong earlier.
    microburst_degree: int = 6
    #: Fan-in at or above which ``"ddos"``-tagged flood flows escalate.
    #: Higher than the incast threshold: a volley below this is noise
    #: the fair-share model absorbs; at or above it the victim's drain
    #: queue is the system.
    ddos_degree: int = 16


class EscalationPolicy:
    """Classifies flows and derives packet-pinned rates for them."""

    def __init__(self, config: Optional[EscalationConfig] = None):
        self.config = config or EscalationConfig()
        self._stragglers = {name: True
                            for name in self.config.straggler_hosts}
        #: reason -> escalation count (mirrors the obs counter, readable
        #: without a session).
        self.escalations: Dict[str, int] = {}

    # -- classification -------------------------------------------------

    def classify(self, spec: FlowSpec, engine) -> Optional[str]:
        """Reason string if ``spec`` must run at packet level, else None.

        Called at flow arrival, after the flow's endpoints are attached
        (so fan-in counts include the arriving flow).
        """
        config = self.config
        if spec.src in self._stragglers:
            return "straggler"
        if (spec.service == "aggregation"
                and engine.service_count("aggregation")
                >= config.pfe_contention_threshold):
            return "pfe-hash"
        dst_host = engine.topology.hosts.get(spec.dst)
        fan_in = dst_host.fluid_fan_in if dst_host is not None else 0
        # Service-tagged fan-in classes from the traffic library.  Both
        # are gated on their tag, so workloads that never emit them
        # (every pre-traffic scenario) classify exactly as before.
        if (spec.service == "microburst"
                and fan_in >= config.microburst_degree):
            return "microburst"
        if spec.service == "ddos" and fan_in >= config.ddos_degree:
            return "ddos"
        if (dst_host is not None
                and fan_in >= config.incast_degree
                and spec.size_bytes <= config.incast_max_flow_bytes):
            return "incast"
        return None

    def group_key(self, spec: FlowSpec, reason: str) -> Tuple[str, str]:
        """Escalated flows sharing a group share one packet reference."""
        if reason in ("incast", "microburst", "ddos"):
            return (reason, spec.dst)
        if reason == "pfe-hash":
            return ("pfe-hash", "pfe")
        return ("straggler", spec.src)

    # -- packet-derived rates -------------------------------------------

    def pinned_rates(self, group: Tuple[str, str],
                     members: List[ActiveFlow],
                     engine) -> Dict[int, float]:
        """Per-flow pinned rate (bps) for one escalation group.

        Recomputed every re-solve: the reference lookup is keyed by the
        group's *current* degree bucket, so rates track membership.

        Uniform-rate contract: every member of a group gets the *same*
        rate (the dict fans one scalar out per flow id).  The
        incremental engine relies on this — a pinned flow's demand
        enters the path-class solver as per-link capacity deltas
        (:meth:`PathClassSolver.pin`), and a group rate change is
        applied as ``new - old`` per member without re-deriving any
        per-flow split.  A future policy that differentiates rates
        within a group must still return one entry per member; only
        the per-member delta bookkeeping in ``FluidEngine`` consumes
        the values.
        """
        reason = group[0]
        config = self.config
        with _obs.suppressed():
            if reason in ("incast", "microburst", "ddos"):
                # All three are fan-in regimes: the victim's drain
                # queue, not the fair share, sets the rate, so one
                # bucketed fan-in reference covers them.
                degree = _degree_bucket(len(members))
                bottleneck = engine.group_bottleneck_bps(members)
                ref = packetref.packet_fan_in(
                    degree, config.reference_flow_bytes,
                    bandwidth_bps=bottleneck,
                )
                rate = config.reference_flow_bytes * 8 / ref.mean_fct_s
            elif reason == "straggler":
                ref = packetref.packet_pair(
                    config.reference_flow_bytes,
                    bandwidth_bps=engine.group_bottleneck_bps(members),
                    tx_overhead_s=config.straggler_tx_overhead_s,
                )
                rate = config.reference_flow_bytes * 8 / ref.mean_fct_s
            else:  # pfe-hash
                per_worker = packetref.packet_pfe_goodput()
                rate = per_worker / max(1, len(members))
        return {flow.spec.flow_id: rate for flow in members}

    # -- bookkeeping ----------------------------------------------------

    def record(self, spec: FlowSpec, reason: str, now_s: float) -> None:
        """Count the escalation and emit the obs instant."""
        self.escalations[reason] = self.escalations.get(reason, 0) + 1
        if _obs.enabled():
            _obs.probe("flowsim.escalations", reason=reason)
            _obs.instant(
                f"escalate:{reason}", now_s, track="flowsim/escalations",
                flow=spec.flow_id, src=spec.src, dst=spec.dst,
                reason=reason,
            )
