"""repro.flowsim — the fluid level of the two-level hybrid simulation.

The packet level (:mod:`repro.net`, :mod:`repro.trio`) is the ground
truth, but paying per-packet event cost for every byte caps simulated
traffic at a few megabytes per CPU-second.  This package adds a flow
(fluid) level above it:

* :mod:`repro.flowsim.flow` — flow specs/records and the wire-framing
  maths shared by both levels;
* :mod:`repro.flowsim.solver` — max-min fair share (progressive
  filling) over directed link capacities;
* :mod:`repro.flowsim.engine` — the event-driven
  :class:`~repro.flowsim.engine.FluidEngine`: re-solve on arrival and
  departure, closed-form completion in between, ~2 events per flow
  regardless of flow size;
* :mod:`repro.flowsim.escalate` — the explicit escalation boundary:
  incast fan-in, straggler windows, and hash-table-contended PFE paths
  run at packet level and pin their rates into the solver;
* :mod:`repro.flowsim.packetref` — the packet-level reference
  microsimulations escalation and calibration are pinned to;
* :mod:`repro.flowsim.scenario` — canonical leaf/spine fabric + seeded
  workloads for benchmarks and sweeps;
* :mod:`repro.flowsim.calibrate` — the CI-gated calibration bridge
  (``python -m repro.flowsim.calibrate --werror``).
"""

# NOTE: repro.flowsim.calibrate is intentionally NOT imported here (like
# repro.collectives.calibrate): it is an entry point (`python -m
# repro.flowsim.calibrate`), and importing it from the package would
# trigger the runpy double-import warning.
from repro.flowsim.engine import FluidEngine
from repro.flowsim.escalate import (
    EscalationConfig,
    EscalationPolicy,
    reset_reference_caches,
)
from repro.flowsim.flow import (
    ActiveFlow,
    DEFAULT_MTU_PAYLOAD_BYTES,
    FRAME_OVERHEAD_BYTES,
    FlowRecord,
    FlowSpec,
    wire_efficiency,
)
from repro.flowsim.packetref import (
    PacketRefResult,
    packet_fan_in,
    packet_pair,
    packet_pfe_goodput,
)
from repro.flowsim.scenario import (
    ScenarioConfig,
    ScenarioResult,
    build_leaf_spine,
    generate_flows,
    run_scenario,
)
from repro.flowsim.solver import (
    MIN_RATE_BPS,
    PathClassSolver,
    max_min_class_rates,
    max_min_rates,
)

__all__ = [
    "ActiveFlow",
    "DEFAULT_MTU_PAYLOAD_BYTES",
    "EscalationConfig",
    "EscalationPolicy",
    "FRAME_OVERHEAD_BYTES",
    "FlowRecord",
    "FlowSpec",
    "FluidEngine",
    "MIN_RATE_BPS",
    "PathClassSolver",
    "PacketRefResult",
    "ScenarioConfig",
    "ScenarioResult",
    "build_leaf_spine",
    "generate_flows",
    "max_min_class_rates",
    "max_min_rates",
    "packet_fan_in",
    "packet_pair",
    "packet_pfe_goodput",
    "reset_reference_caches",
    "run_scenario",
    "wire_efficiency",
]
