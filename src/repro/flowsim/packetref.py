"""Packet-level reference scenarios for the hybrid flow simulation.

These are the *ground truth* the fluid level is pinned to.  Each
scenario builds a small, fully packet-level simulation out of the real
:mod:`repro.net` stack — hosts with NICs, store-and-forward switching,
serialising links — runs it to completion, and reports per-flow
completion times and goodputs.

Three shapes cover the escalation triggers and the calibration bridge:

* :func:`packet_pair` — one sender through a switch to one receiver.
  The no-contention baseline; calibrates the fluid level's closed-form
  FCT (rate + fixed path latency).
* :func:`packet_fan_in` — N synchronised senders converging on one
  receiver through a single egress (the incast shape).  The measured
  per-flow FCT embeds the queue-drain behaviour an equal-share fluid
  model underestimates for small and medium flows.
* :func:`packet_pfe_goodput` — per-worker goodput of the
  hash-table-contended Trio PFE aggregation path, reusing the §6.3
  single-PFE testbed at small sizing.

Every function is a pure, deterministic function of its arguments (no
RNG, no wall clock), so results may be memoised freely; the engine
caches them per escalation bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Tuple

from repro.flowsim.flow import DEFAULT_MTU_PAYLOAD_BYTES
from repro.net import IPv4Address, MACAddress, Topology
from repro.net.host import Host
from repro.net.link import Port
from repro.net.packet import Packet
from repro.sim import Environment

__all__ = [
    "PacketRefResult",
    "packet_fan_in",
    "packet_pair",
    "packet_pfe_goodput",
]

#: UDP ports used by the reference flows (arbitrary, fixed).
_SRC_PORT = 40000
_DST_PORT = 9000


@dataclass(frozen=True)
class PacketRefResult:
    """Measured outcome of one packet-level reference run."""

    #: Per-sender flow completion time (seconds), in sender order.
    fct_s: Tuple[float, ...]
    #: Payload bytes each sender delivered.
    flow_bytes: float
    #: Aggregate receiver goodput over the run (bps).
    aggregate_goodput_bps: float

    @property
    def mean_fct_s(self) -> float:
        return sum(self.fct_s) / len(self.fct_s)

    @property
    def max_fct_s(self) -> float:
        return max(self.fct_s)

    @property
    def per_flow_goodput_bps(self) -> float:
        """Mean per-flow goodput implied by the measured FCTs."""
        return self.flow_bytes * 8 / self.mean_fct_s


def _sender(host: Host, dst_mac, dst_ip, size_bytes: int,
            payload_bytes: int):
    """Send ``size_bytes`` of payload as back-to-back UDP frames."""
    remaining = int(size_bytes)
    while remaining > 0:
        chunk = min(payload_bytes, remaining)
        pending = host.try_send_udp(
            dst_mac, dst_ip, _SRC_PORT, _DST_PORT, bytes(chunk)
        )
        if pending is not None:
            yield pending
        remaining -= chunk


def _run_fan_in(num_senders: int, flow_bytes: int, bandwidth_bps: float,
                propagation_s: float, payload_bytes: int,
                tx_overhead_s: float) -> PacketRefResult:
    env = Environment()
    topology = Topology(env)
    receiver = Host(env, "ref-rx", MACAddress(0xFF00), IPv4Address("10.99.0.1"))
    topology.add_host(receiver)

    # Store-and-forward switch: every ingress port forwards to the one
    # egress port toward the receiver, whose link is the fan-in
    # bottleneck.
    egress = Port(env, "ref-sw:out")
    topology.register_port(egress, "ref-sw")
    topology.connect(egress, receiver.nic.port,
                     bandwidth_bps=bandwidth_bps,
                     propagation_delay_s=propagation_s)

    def forward(packet: Packet, port: Port) -> None:
        egress.send(packet)

    senders: List[Host] = []
    for index in range(num_senders):
        host = Host(
            env, f"ref-tx{index}", MACAddress(0x1000 + index),
            IPv4Address(f"10.99.{1 + index // 250}.{2 + index % 250}"),
            tx_overhead_s=tx_overhead_s,
        )
        topology.add_host(host)
        ingress = Port(env, f"ref-sw:in{index}", rx_handler=forward)
        topology.register_port(ingress, "ref-sw")
        topology.connect(host.nic.port, ingress,
                         bandwidth_bps=bandwidth_bps,
                         propagation_delay_s=propagation_s)
        senders.append(host)

    finish_s = [0.0] * num_senders
    received = [0] * num_senders
    ip_to_index = {str(host.ip): i for i, host in enumerate(senders)}
    done = env.event()
    outstanding = [num_senders]

    def sink():
        while True:
            frame = yield receiver.recv()
            __, ip, __, payload = frame.parse_udp()
            index = ip_to_index[str(ip.src)]
            received[index] += len(payload)
            if received[index] >= flow_bytes:
                finish_s[index] = env.now
                outstanding[0] -= 1
                if outstanding[0] == 0:
                    done.succeed()
                    return

    env.process(sink(), name="ref-sink")
    for host in senders:
        env.process(
            _sender(host, receiver.mac, receiver.ip, flow_bytes,
                    payload_bytes),
            name=f"ref-flow:{host.name}",
        )
    env.run(until=done)
    total_bits = flow_bytes * 8 * num_senders
    return PacketRefResult(
        fct_s=tuple(finish_s),
        flow_bytes=float(flow_bytes),
        aggregate_goodput_bps=total_bits / env.now,
    )


@lru_cache(maxsize=256)
def packet_fan_in(num_senders: int, flow_bytes: int,
                  bandwidth_bps: float = 100e9,
                  propagation_s: float = 1e-6,
                  payload_bytes: int = DEFAULT_MTU_PAYLOAD_BYTES,
                  ) -> PacketRefResult:
    """N synchronised senders, one receiver, one bottleneck egress."""
    if num_senders < 1:
        raise ValueError(f"need at least one sender, got {num_senders}")
    return _run_fan_in(num_senders, flow_bytes, bandwidth_bps,
                       propagation_s, payload_bytes, tx_overhead_s=0.0)


@lru_cache(maxsize=64)
def packet_pair(flow_bytes: int, bandwidth_bps: float = 100e9,
                propagation_s: float = 1e-6,
                payload_bytes: int = DEFAULT_MTU_PAYLOAD_BYTES,
                tx_overhead_s: float = 0.0) -> PacketRefResult:
    """One sender through the switch to one receiver.

    ``tx_overhead_s`` models a straggling host's per-packet DPDK-side
    cost; the measured goodput is then the straggler's sustainable rate.
    """
    return _run_fan_in(1, flow_bytes, bandwidth_bps, propagation_s,
                       payload_bytes, tx_overhead_s=tx_overhead_s)


@lru_cache(maxsize=16)
def packet_pfe_goodput(num_workers: int = 4, grads_per_packet: int = 256,
                       blocks: int = 24, window: int = 8) -> float:
    """Per-worker goodput (bps) of the hash-table-contended PFE path.

    Runs the §6.3 single-PFE aggregation testbed — PPE dispatch, hash
    lookup under contention, RMW aggregation, result multicast — at
    small sizing and reports model bits per worker divided by
    completion time.  This is the packet-derived rate an escalated
    ``"aggregation"`` flow is pinned to.
    """
    from repro.harness.testbed import build_single_pfe_testbed
    from repro.trioml.config import TrioMLJobConfig

    env = Environment()
    config = TrioMLJobConfig(grads_per_packet=grads_per_packet,
                             window=window)
    testbed = build_single_pfe_testbed(env, config,
                                       num_workers=num_workers)
    vector = [1] * (grads_per_packet * blocks)
    procs = testbed.run_allreduce([vector] * num_workers)
    env.run(until=env.all_of(procs))
    return len(vector) * 32 / env.now
