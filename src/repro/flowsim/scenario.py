"""Canonical hybrid-simulation scenarios: fabric + seeded workload.

One fabric shape (a leaf/spine Clos, the topology of the paper's
testbed rack writ small) and one workload generator (Poisson arrivals,
exponential sizes, with configurable incast bursts, ``"aggregation"``
traffic that exercises the PFE escalation path, and straggler hosts)
cover the benchmark, the calibration bridge, and the determinism tests.

Everything is a pure function of the config plus the environment's seed
tree: flow ids, arrival times, sizes, and endpoints come from
``env.rng_stream("flowsim/scenario")``, so two runs with the same
``--seed`` produce byte-identical flow lists in any process layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.flowsim.engine import FluidEngine
from repro.flowsim.escalate import (
    EscalationConfig,
    EscalationPolicy,
    reset_reference_caches,
)
from repro.flowsim.flow import FlowRecord, FlowSpec
from repro.net import IPv4Address, MACAddress, Topology
from repro.net.host import Host
from repro.net.link import Port
from repro.sim import Environment

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "build_leaf_spine",
    "generate_flows",
    "run_scenario",
]


@dataclass(frozen=True)
class ScenarioConfig:
    """One hybrid-simulation scenario, fabric and workload together."""

    # -- fabric ---------------------------------------------------------
    leaves: int = 4
    hosts_per_leaf: int = 16
    host_bandwidth_bps: float = 100e9
    #: Leaf->spine uplink speed; at the default 800G a leaf of sixteen
    #: 100G hosts is 2:1 oversubscribed, so uplinks genuinely contend
    #: (uplink utilisation ~0.76 at the default load) while the system
    #: stays stable — offered load must remain below every bottleneck
    #: or the active-flow set grows without bound.
    uplink_bandwidth_bps: float = 800e9
    propagation_s: float = 1e-6

    # -- workload -------------------------------------------------------
    num_flows: int = 2000
    #: Mean of the exponential flow-size distribution.  Large flows are
    #: where the fluid level earns its keep: per-flow cost is
    #: size-independent.
    mean_flow_bytes: float = 2e6
    #: Offered load as a fraction of aggregate host access bandwidth.
    load: float = 0.5
    #: Fraction of the flow budget spent on synchronised incast bursts.
    incast_fraction: float = 0.05
    incast_degree: int = 12
    incast_flow_bytes: float = 40_000.0
    #: Fraction of the flow budget spent on ``"aggregation"`` bursts
    #: (the PFE hash-contention escalation trigger).  Aggregation
    #: traffic is a synchronised allreduce step: ``aggregation_degree``
    #: workers transmit gradient blocks at the same instant, which is
    #: what drives concurrent PFE hash-path occupancy past the
    #: escalation threshold.
    aggregation_fraction: float = 0.02
    aggregation_degree: int = 6
    #: Aggregation flows are gradient blocks, not bulk transfers: small
    #: and fixed-size.  Their packet-pinned service rate is low (the
    #: contended PFE path), so sizing them like bulk flows would
    #: overload that path and grow the active set without bound.
    aggregation_flow_bytes: float = 50_000.0
    #: Hosts (by name) whose transmit side straggles.
    straggler_hosts: Tuple[str, ...] = ("h00-00",)
    escalation: EscalationConfig = field(default_factory=EscalationConfig)


@dataclass
class ScenarioResult:
    """Outcome of one hybrid run."""

    records: List[FlowRecord]
    summary: Dict[str, float]
    escalations: Dict[str, int]
    #: Simulated time at which the last flow finished (seconds).
    sim_seconds: float
    #: Payload bytes carried to completion across all flows.
    simulated_payload_bytes: float
    solves: int
    #: Events actually pushed onto the simulator heap.  The engine
    #: keeps a single live completion wake-up (reusing or cancelling
    #: the pending one instead of abandoning epoch-stale events on the
    #: heap), so this stays near-linear in flows; the flowsim bench
    #: asserts the bound.
    scheduled_events: int = 0
    #: Wake-up accounting: scheduled / cancelled / reused / stale.
    wake: Dict[str, int] = field(default_factory=dict)


def host_name(leaf: int, index: int) -> str:
    return f"h{leaf:02d}-{index:02d}"


def build_leaf_spine(env: Environment,
                     config: ScenarioConfig) -> Topology:
    """A single-spine leaf/spine Clos with oversubscribed uplinks."""
    topology = Topology(env)
    for leaf in range(config.leaves):
        for index in range(config.hosts_per_leaf):
            host = Host(
                env,
                host_name(leaf, index),
                MACAddress(0x0200_0000 + leaf * 256 + index),
                IPv4Address(f"10.{leaf}.0.{index + 1}"),
            )
            topology.add_host(host)
            down = Port(env, f"leaf{leaf}:down{index}")
            topology.register_port(down, f"leaf{leaf}")
            topology.connect(
                host.nic.port, down,
                bandwidth_bps=config.host_bandwidth_bps,
                propagation_delay_s=config.propagation_s,
            )
        up = Port(env, f"leaf{leaf}:up")
        topology.register_port(up, f"leaf{leaf}")
        spine_port = Port(env, f"spine:leaf{leaf}")
        topology.register_port(spine_port, "spine")
        topology.add_device(f"leaf{leaf}", up)
        topology.connect(
            up, spine_port,
            bandwidth_bps=config.uplink_bandwidth_bps,
            propagation_delay_s=config.propagation_s,
        )
    topology.add_device("spine", None)
    return topology


def generate_flows(env: Environment,
                   config: ScenarioConfig) -> List[FlowSpec]:
    """The scenario's flow list, drawn from the environment's seed tree."""
    # Imported here, not at module level: repro.traffic imports this
    # module for the fabric (FlowSpec, host_name, build_leaf_spine), so
    # a top-level import back into repro.traffic would be circular.
    from repro.traffic.samplers import ExponentialSizes, fan_in_burst

    rng = env.rng_stream("flowsim/scenario")
    bulk_sizes = ExponentialSizes(config.mean_flow_bytes)
    hosts = [host_name(leaf, index)
             for leaf in range(config.leaves)
             for index in range(config.hosts_per_leaf)]
    num_hosts = len(hosts)

    # Poisson arrivals sized so offered load hits the target fraction of
    # aggregate access bandwidth.
    offered_bps = num_hosts * config.host_bandwidth_bps * config.load
    arrival_rate = offered_bps / (config.mean_flow_bytes * 8.0)

    flows: List[FlowSpec] = []
    flow_id = 0
    now = 0.0
    incast_budget = int(config.num_flows * config.incast_fraction)
    aggregation_budget = int(config.num_flows
                             * config.aggregation_fraction)
    while len(flows) < config.num_flows:
        now += rng.expovariate(arrival_rate)
        if (aggregation_budget > 0
                and rng.random() < config.aggregation_fraction):
            # A synchronised allreduce step: `aggregation_degree`
            # workers ship a gradient block to one aggregation point at
            # the same instant.
            target, workers = fan_in_burst(
                rng, num_hosts, config.aggregation_degree)
            for worker in workers:
                flows.append(FlowSpec(
                    flow_id=flow_id,
                    src=hosts[worker],
                    dst=hosts[target],
                    size_bytes=config.aggregation_flow_bytes,
                    start_s=now,
                    service="aggregation",
                ))
                flow_id += 1
            aggregation_budget -= len(workers)
            continue
        burst = (incast_budget > 0
                 and rng.random() < config.incast_fraction)
        if burst:
            # A synchronised fan-in: `incast_degree` short flows from
            # distinct sources arriving at the same instant.
            victim, senders = fan_in_burst(
                rng, num_hosts, config.incast_degree)
            for sender in senders:
                flows.append(FlowSpec(
                    flow_id=flow_id,
                    src=hosts[sender],
                    dst=hosts[victim],
                    size_bytes=config.incast_flow_bytes,
                    start_s=now,
                    service="incast",
                ))
                flow_id += 1
            incast_budget -= len(senders)
            continue
        src = rng.randrange(num_hosts)
        dst = rng.randrange(num_hosts - 1)
        if dst >= src:
            dst += 1
        size = bulk_sizes.sample(rng)
        flows.append(FlowSpec(
            flow_id=flow_id,
            src=hosts[src],
            dst=hosts[dst],
            size_bytes=size,
            start_s=now,
            service="bulk",
        ))
        flow_id += 1
    return flows[:config.num_flows]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build the fabric, inject the workload, run to completion."""
    # Fresh reference caches per point: identical cost and side effects
    # whether this point runs serially, in a worker, or after another.
    reset_reference_caches()
    env = Environment()
    topology = build_leaf_spine(env, config)
    policy = EscalationPolicy(EscalationConfig(
        incast_degree=config.escalation.incast_degree,
        incast_max_flow_bytes=config.escalation.incast_max_flow_bytes,
        straggler_hosts=config.straggler_hosts,
        straggler_tx_overhead_s=config.escalation.straggler_tx_overhead_s,
        pfe_contention_threshold=config.escalation.pfe_contention_threshold,
        reference_flow_bytes=config.escalation.reference_flow_bytes,
    ))
    engine = FluidEngine(env, topology, policy=policy)
    for spec in generate_flows(env, config):
        env.call_at(spec.start_s, engine.start_flow, spec)
    env.run()
    return ScenarioResult(
        records=engine.records,
        summary=engine.summary(),
        escalations=engine.escalations,
        sim_seconds=env.now,
        simulated_payload_bytes=engine.completed_payload_bytes,
        solves=engine.solves,
        scheduled_events=env.scheduled_events,
        wake={
            "scheduled": engine.wake_scheduled,
            "cancelled": engine.wake_cancelled,
            "reused": engine.wake_reused,
            "stale": engine.wake_stale,
        },
    )
