"""Event-driven fluid flow engine — the fast level of the hybrid.

Long-lived flows are modelled as rates, not packet streams.  Between
*re-solve points* nothing needs simulating at all: every flow drains at
its allocated rate and the earliest projected completion is known in
closed form.  The engine therefore schedules exactly two kinds of
events:

* a **re-solve** whenever the flow set changes (arrival or departure),
  coalesced per timestamp so an incast burst of N arrivals pays one
  solve, not N;
* a **completion wake-up** at the projected earliest finish, guarded by
  an epoch counter so a re-solve invalidates stale wake-ups for free.

Both run in the flow-level scheduling lane
(:data:`repro.sim.FLOW_LEVEL_PRIORITY`): at any shared timestamp every
packet-level event settles first, then the fluid level observes the
result and re-allocates.  Rates come from max-min fair share
(:mod:`repro.flowsim.solver`) over the directed link capacities of a
:class:`repro.net.Topology`, derated by Ethernet/IPv4/UDP framing so
fluid goodput and packet goodput are the same currency.

Flows the :class:`~repro.flowsim.escalate.EscalationPolicy` marks
contention-critical are *escalated*: their rate is pinned to a matched
packet-level reference measurement instead of a fair share, and the
solver treats that demand as inelastic.  Escalations are visible to
:mod:`repro.obs` as counters, instants, and simulated-time spans, so a
profile shows exactly where the packet level was entered and why.

Cost model: O(active flows x path length) per re-solve and ~2 events
per flow total, independent of flow *size* — which is where the
simulated-bytes-per-CPU-second advantage over the packet level comes
from.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.flowsim.escalate import EscalationPolicy
from repro.flowsim.flow import (
    ActiveFlow,
    DEFAULT_MTU_PAYLOAD_BYTES,
    FRAME_OVERHEAD_BYTES,
    FlowRecord,
    FlowSpec,
    wire_efficiency,
)
from repro.flowsim.solver import MIN_RATE_BPS, max_min_rates
from repro.net.topology import Topology
from repro.obs import bus as _obs
from repro.sim import FLOW_LEVEL_PRIORITY, Environment

__all__ = ["FluidEngine"]

#: Residual-bits tolerance under which a flow counts as finished.  The
#: wake-up fires at the exact projected instant, so the residual is pure
#: float rounding — many orders of magnitude below one bit.
_COMPLETION_EPS_BITS = 1.0


class FluidEngine:
    """Runs fluid flows over a topology inside a simulation environment."""

    def __init__(self, env: Environment, topology: Topology,
                 policy: Optional[EscalationPolicy] = None,
                 payload_bytes: int = DEFAULT_MTU_PAYLOAD_BYTES):
        self.env = env
        self.topology = topology
        self.policy = policy or EscalationPolicy()
        self.payload_bytes = payload_bytes
        self._efficiency = wire_efficiency(payload_bytes)

        #: directed-link key -> (link, tx_port); key order is creation
        #: order, deterministic because paths resolve deterministically.
        self._dir_links: List[Tuple[object, object]] = []
        self._dir_key: Dict[Tuple[int, str], int] = {}
        self._capacity_bps: Dict[int, float] = {}
        self._path_cache: Dict[Tuple[str, str],
                               Tuple[Tuple[int, ...], float]] = {}

        self.active: Dict[int, ActiveFlow] = {}
        self.records: List[FlowRecord] = []
        self._service_counts: Dict[str, int] = {}

        self._last_advance_s = env.now
        self._epoch = 0
        self._solve_pending = False

        # Aggregate statistics (kept unconditionally; cheap).
        self.solves = 0
        self.completed_payload_bytes = 0.0
        self.escalated_completions = 0

    # -- topology resolution --------------------------------------------

    def _resolve_path(self, src: str, dst: str
                      ) -> Tuple[Tuple[int, ...], float]:
        """Directed-link keys plus fixed path latency for ``src -> dst``."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        hops = self.topology.find_path(src, dst)
        keys: List[int] = []
        latency = 0.0
        frame_bits = (self.payload_bytes + FRAME_OVERHEAD_BYTES) * 8
        for link, tx_port in hops:
            dir_id = (id(link), tx_port.name)
            key = self._dir_key.get(dir_id)
            if key is None:
                key = len(self._dir_links)
                self._dir_key[dir_id] = key
                self._dir_links.append((link, tx_port))
                self._capacity_bps[key] = (
                    link.bandwidth_bps * self._efficiency
                )
            keys.append(key)
            # Store-and-forward: one full frame serialisation per hop
            # plus the propagation delay.
            latency += (link.propagation_delay_s
                        + frame_bits / link.bandwidth_bps)
        resolved = (tuple(keys), latency)
        self._path_cache[(src, dst)] = resolved
        return resolved

    # -- introspection used by the policy -------------------------------

    def service_count(self, service: str) -> int:
        """Active flows carrying ``service`` (including escalated ones)."""
        return self._service_counts.get(service, 0)

    def group_bottleneck_bps(self, members: List[ActiveFlow]) -> float:
        """Raw bandwidth of the narrowest link the group traverses.

        Used to size packet-level reference runs so they model the
        right bottleneck (e.g. the incast destination's access link).
        """
        narrowest = None
        for flow in members:
            for key in flow.links:
                cap = self._capacity_bps[key]
                if narrowest is None or cap < narrowest:
                    narrowest = cap
        if narrowest is None:
            return 100e9
        return narrowest / self._efficiency

    # -- flow lifecycle --------------------------------------------------

    def start_flow(self, spec: FlowSpec) -> None:
        """Admit ``spec`` at the current simulated time."""
        if spec.flow_id in self.active:
            raise ValueError(f"duplicate flow id: {spec.flow_id}")
        keys, latency = self._resolve_path(spec.src, spec.dst)
        flow = ActiveFlow(
            spec=spec,
            links=keys,
            remaining_bits=spec.size_bytes * 8.0,
            latency_s=latency,
        )
        self.active[spec.flow_id] = flow
        self._service_counts[spec.service] = (
            self._service_counts.get(spec.service, 0) + 1
        )
        src_host = self.topology.hosts.get(spec.src)
        dst_host = self.topology.hosts.get(spec.dst)
        if src_host is not None:
            src_host.fluid_open(spec.flow_id, "tx")
        if dst_host is not None:
            dst_host.fluid_open(spec.flow_id, "rx")
        for key in keys:
            link, tx_port = self._dir_links[key]
            link.fluid_attach(tx_port, spec.flow_id)

        reason = self.policy.classify(spec, self)
        if reason is not None:
            flow.escalated = reason
            flow.group = self.policy.group_key(spec, reason)
            flow.meta["escalated_s"] = self.env.now
            self.policy.record(spec, reason, self.env.now)
        self._schedule_solve()

    def _finish_flow(self, flow: ActiveFlow, now: float) -> None:
        spec = flow.spec
        del self.active[spec.flow_id]
        self._service_counts[spec.service] -= 1
        src_host = self.topology.hosts.get(spec.src)
        dst_host = self.topology.hosts.get(spec.dst)
        if src_host is not None:
            src_host.fluid_close(spec.flow_id, "tx", spec.size_bytes)
        if dst_host is not None:
            dst_host.fluid_close(spec.flow_id, "rx", spec.size_bytes)
        for key in flow.links:
            link, tx_port = self._dir_links[key]
            link.fluid_detach(tx_port, spec.flow_id)

        fct = now - spec.start_s + flow.latency_s
        record = FlowRecord(
            spec=spec,
            finish_s=now + flow.latency_s,
            fct_s=fct,
            goodput_bps=spec.size_bytes * 8.0 / fct,
            escalated=flow.escalated,
        )
        self.records.append(record)
        self.completed_payload_bytes += spec.size_bytes
        if flow.escalated is not None:
            self.escalated_completions += 1
        if _obs.enabled():
            _obs.observe("flowsim.fct_s", fct, service=spec.service)
            _obs.probe("flowsim.completed", service=spec.service)
            if flow.escalated is not None:
                _obs.complete(
                    f"escalated:{flow.escalated}",
                    flow.meta["escalated_s"], now,
                    track="flowsim/escalations",
                    flow=spec.flow_id, reason=flow.escalated,
                    dst=spec.dst,
                )

    # -- the event-driven solve loop ------------------------------------

    def _schedule_solve(self) -> None:
        """Coalesce re-solves: one flow-level event per timestamp."""
        if self._solve_pending:
            return
        self._solve_pending = True
        self.env.call_at(self.env.now, self._solve_cycle,
                         priority=FLOW_LEVEL_PRIORITY)

    def _wake(self, epoch: int) -> None:
        """Projected-completion wake-up; stale epochs are no-ops."""
        if epoch != self._epoch:
            return
        self._solve_cycle()

    def _solve_cycle(self) -> None:
        self._solve_pending = False
        now = self.env.now
        self._advance(now)
        self._complete_due(now)
        self._resolve(now)

    def _advance(self, now: float) -> None:
        """Drain every active flow at its current rate up to ``now``."""
        dt = now - self._last_advance_s
        self._last_advance_s = now
        if dt <= 0.0:
            return
        for flow in self.active.values():
            if flow.rate_bps > 0.0:
                flow.remaining_bits -= flow.rate_bps * dt

    def _complete_due(self, now: float) -> None:
        due = [flow for flow in self.active.values()
               if flow.remaining_bits <= _COMPLETION_EPS_BITS]
        for flow in due:
            self._finish_flow(flow, now)

    def _resolve(self, now: float) -> None:
        """Re-allocate rates and schedule the next completion wake-up."""
        self._epoch += 1
        self.solves += 1
        if not self.active:
            return

        # Pinned (escalated) flows first: group them, ask the policy for
        # packet-derived rates, and accumulate their demand per link.
        groups: Dict[Tuple[str, str], List[ActiveFlow]] = {}
        elastic: Dict[int, Tuple[int, ...]] = {}
        for flow_id, flow in self.active.items():
            if flow.escalated is not None:
                groups.setdefault(flow.group, []).append(flow)
            else:
                elastic[flow_id] = flow.links
        pinned_bps: Dict[int, float] = {}
        for group, members in groups.items():
            rates = self.policy.pinned_rates(group, members, self)
            for flow in members:
                rate = rates[flow.spec.flow_id]
                flow.rate_bps = rate
                for key in flow.links:
                    pinned_bps[key] = pinned_bps.get(key, 0.0) + rate

        if elastic:
            solved = max_min_rates(elastic, self._capacity_bps, pinned_bps)
            for flow_id, rate in solved.items():
                self.active[flow_id].rate_bps = rate

        # Write rates back through the endpoint/link hooks and find the
        # earliest projected completion.
        next_finish = None
        hosts = self.topology.hosts
        dir_links = self._dir_links
        for flow in self.active.values():
            spec = flow.spec
            rate = flow.rate_bps
            if rate != flow.written_bps:
                flow.written_bps = rate
                for key in flow.links:
                    link, tx_port = dir_links[key]
                    link.fluid_set_rate(tx_port, spec.flow_id, rate)
                src_host = hosts.get(spec.src)
                if src_host is not None:
                    src_host.fluid_set_rate(spec.flow_id, "tx", rate)
                dst_host = hosts.get(spec.dst)
                if dst_host is not None:
                    dst_host.fluid_set_rate(spec.flow_id, "rx", rate)
            finish = flow.remaining_bits / rate if rate > 0.0 else None
            if finish is not None and (next_finish is None
                                       or finish < next_finish):
                next_finish = finish

        if _obs.enabled():
            _obs.probe("flowsim.solves")
            _obs.sample("flowsim/active_flows", now, float(len(self.active)))

        if next_finish is not None:
            self.env.call_at(now + next_finish, self._wake, self._epoch,
                             priority=FLOW_LEVEL_PRIORITY)

    # -- aggregate statistics -------------------------------------------

    @property
    def escalations(self) -> Dict[str, int]:
        """Escalation counts by reason (delegates to the policy)."""
        return dict(self.policy.escalations)

    def summary(self) -> Dict[str, float]:
        """Aggregate completion statistics over all finished flows."""
        if not self.records:
            return {
                "flows": 0.0,
                "payload_bytes": 0.0,
                "mean_fct_s": 0.0,
                "p99_fct_s": 0.0,
                "mean_goodput_bps": 0.0,
                "escalated": 0.0,
                "solves": float(self.solves),
            }
        fcts = sorted(record.fct_s for record in self.records)
        goodputs = [record.goodput_bps for record in self.records]
        return {
            "flows": float(len(self.records)),
            "payload_bytes": self.completed_payload_bytes,
            "mean_fct_s": sum(fcts) / len(fcts),
            "p99_fct_s": fcts[int(0.99 * (len(fcts) - 1))],
            "mean_goodput_bps": sum(goodputs) / len(goodputs),
            "escalated": float(self.escalated_completions),
            "solves": float(self.solves),
        }
