"""Event-driven fluid flow engine — the fast level of the hybrid.

Long-lived flows are modelled as rates, not packet streams.  Between
*re-solve points* nothing needs simulating at all: every flow drains at
its allocated rate and the earliest projected completion is known in
closed form.  The engine therefore schedules exactly two kinds of
events:

* a **re-solve** whenever the flow set changes (arrival or departure),
  coalesced per timestamp so an incast burst of N arrivals pays one
  solve, not N;
* a **completion wake-up** at the projected earliest finish.  One live
  wake-up exists at a time: when a re-solve moves the projection
  earlier the pending wake-up is cancelled and replaced, and when it
  moves later the pending wake-up is reused (it fires early, sees the
  newer projection, and re-aims without solving).

Both run in the flow-level scheduling lane
(:data:`repro.sim.FLOW_LEVEL_PRIORITY`): at any shared timestamp every
packet-level event settles first, then the fluid level observes the
result and re-allocates.

Rate allocation is **two-level**.  Flows sharing one directed-link
signature form a *path class*, and the incremental
:class:`~repro.flowsim.solver.PathClassSolver` allocates per class —
O(distinct paths) variables, not O(flows) — from per-link state kept
alive across solves.  The engine mirrors that structure in its
progress accounting: each class carries one cumulative served-bits
curve and a heap of member completion targets, so a re-solve touches
only the classes whose allocation actually changed; unchanged classes
pay nothing — no drain sweep, no rate write-back, no dict rebuild.
Rates come from max-min fair share over the directed link capacities
of a :class:`repro.net.Topology`, derated by Ethernet/IPv4/UDP framing
so fluid goodput and packet goodput are the same currency.

Flows the :class:`~repro.flowsim.escalate.EscalationPolicy` marks
contention-critical are *escalated*: their rate is pinned to a matched
packet-level reference measurement instead of a fair share, and the
solver treats that demand as inelastic.  Escalation groups are pinned
pseudo-classes: the group rate is a pure function of membership (see
``escalate.py``), so it is recomputed only when membership changes and
its per-link demand is maintained by deltas.  Escalations are visible
to :mod:`repro.obs` as counters, instants, and simulated-time spans,
so a profile shows exactly where the packet level was entered and why.

Cost model: O(path classes + changed classes x members) per re-solve
and ~2 events per flow total, independent of flow *size* — which is
where the simulated-bytes-per-CPU-second advantage over the packet
level comes from.
"""

from __future__ import annotations

from heapq import heappop, heappush
from math import inf as _INF
from time import process_time
from typing import Dict, List, Optional, Tuple

from repro.flowsim.escalate import EscalationPolicy
from repro.flowsim.flow import (
    ActiveFlow,
    DEFAULT_MTU_PAYLOAD_BYTES,
    FRAME_OVERHEAD_BYTES,
    FlowRecord,
    FlowSpec,
    wire_efficiency,
)
from repro.flowsim.solver import PathClassSolver
from repro.net.topology import Topology
from repro.obs import bus as _obs
from repro.sim import FLOW_LEVEL_PRIORITY, Environment

__all__ = ["FluidEngine"]

#: Residual-bits tolerance under which a flow counts as finished.  The
#: wake-up fires at the exact projected instant, so the residual is pure
#: float rounding — many orders of magnitude below one bit.
_COMPLETION_EPS_BITS = 1.0


class _PathClass:
    """One solver variable's worth of engine state.

    Elastic classes are keyed by their directed-link signature; pinned
    (escalated) classes by their escalation-group key, with
    ``links=None`` because members may take different paths while
    sharing one packet-derived rate.

    Progress is a single cumulative curve ``bits(t) = bits + rate_bps *
    (t - t_base)`` — the bits served to *each* member since the class
    was created.  A member arriving when the curve reads ``b`` finishes
    when the curve reaches ``b + size_bits``; those targets live in a
    min-heap, so the class's next completion is ``targets[0]``
    regardless of member count.  ``version`` stamps entries the engine
    pushes into its global finish heap: bumping it on any rate or
    membership change invalidates stale projections lazily, with no
    heap surgery.
    """

    __slots__ = ("links", "flows", "targets", "rate_bps", "bits",
                 "t_base", "version")

    def __init__(self, links: Optional[Tuple[int, ...]], now: float):
        self.links = links
        self.flows: Dict[int, ActiveFlow] = {}
        self.targets: List[Tuple[float, int]] = []
        self.rate_bps = 0.0
        self.bits = 0.0
        self.t_base = now
        self.version = 0


class FluidEngine:
    """Runs fluid flows over a topology inside a simulation environment."""

    def __init__(self, env: Environment, topology: Topology,
                 policy: Optional[EscalationPolicy] = None,
                 payload_bytes: int = DEFAULT_MTU_PAYLOAD_BYTES):
        self.env = env
        self.topology = topology
        self.policy = policy or EscalationPolicy()
        self.payload_bytes = payload_bytes
        self._efficiency = wire_efficiency(payload_bytes)

        #: directed-link key -> (link, tx_port); key order is creation
        #: order, deterministic because paths resolve deterministically.
        self._dir_links: List[Tuple[object, object]] = []
        self._dir_key: Dict[Tuple[int, str], int] = {}
        self._capacity_bps: Dict[int, float] = {}
        self._path_cache: Dict[Tuple[str, str],
                               Tuple[Tuple[int, ...], float]] = {}

        self.active: Dict[int, ActiveFlow] = {}
        self.records: List[FlowRecord] = []
        self._service_counts: Dict[str, int] = {}

        # Two-level allocation state, alive across solves.
        self._solver = PathClassSolver(self._capacity_bps)
        #: link signature -> elastic class.
        self._classes: Dict[Tuple[int, ...], _PathClass] = {}
        #: escalation-group key -> pinned class.  Pinned per-link demand
        #: lives inside the solver, maintained by pin() deltas.
        self._groups: Dict[Tuple[str, str], _PathClass] = {}
        #: insertion-ordered sets (dicts) of classes whose membership
        #: changed since the last solve; cleared by the solve.
        self._dirty_classes: Dict[Tuple[int, ...], None] = {}
        self._dirty_groups: Dict[Tuple[str, str], None] = {}
        #: global min-heap of (finish_s, class version at push, seq,
        #: class); entries whose version lags the class's are stale.
        self._finish_heap: List[Tuple[float, int, int, _PathClass]] = []
        self._finish_seq = 0
        self._next_finish_s = _INF

        self._solve_pending = False
        #: the single live completion wake-up, if any.
        self._wake_handle = None
        self._wake_at = _INF

        # Aggregate statistics (kept unconditionally; cheap).
        self.solves = 0
        self.completed_payload_bytes = 0.0
        self.escalated_completions = 0
        #: wake-up bookkeeping: scheduled = events actually pushed,
        #: cancelled = pending wakes invalidated by an earlier
        #: projection, reused = re-solves that kept the pending wake,
        #: stale = wakes that fired early and re-aimed without solving.
        self.wake_scheduled = 0
        self.wake_cancelled = 0
        self.wake_reused = 0
        self.wake_stale = 0

    # -- topology resolution --------------------------------------------

    def _resolve_path(self, src: str, dst: str
                      ) -> Tuple[Tuple[int, ...], float]:
        """Directed-link keys plus fixed path latency for ``src -> dst``."""
        cached = self._path_cache.get((src, dst))
        if cached is not None:
            return cached
        hops = self.topology.find_path(src, dst)
        keys: List[int] = []
        latency = 0.0
        frame_bits = (self.payload_bytes + FRAME_OVERHEAD_BYTES) * 8
        for link, tx_port in hops:
            dir_id = (id(link), tx_port.name)
            key = self._dir_key.get(dir_id)
            if key is None:
                key = len(self._dir_links)
                self._dir_key[dir_id] = key
                self._dir_links.append((link, tx_port))
                self._capacity_bps[key] = (
                    link.bandwidth_bps * self._efficiency
                )
            keys.append(key)
            # Store-and-forward: one full frame serialisation per hop
            # plus the propagation delay.
            latency += (link.propagation_delay_s
                        + frame_bits / link.bandwidth_bps)
        resolved = (tuple(keys), latency)
        self._path_cache[(src, dst)] = resolved
        return resolved

    # -- introspection used by the policy -------------------------------

    def service_count(self, service: str) -> int:
        """Active flows carrying ``service`` (including escalated ones)."""
        return self._service_counts.get(service, 0)

    def group_bottleneck_bps(self, members: List[ActiveFlow]) -> float:
        """Raw bandwidth of the narrowest link the group traverses.

        Used to size packet-level reference runs so they model the
        right bottleneck (e.g. the incast destination's access link).
        """
        narrowest = None
        for flow in members:
            for key in flow.links:
                cap = self._capacity_bps[key]
                if narrowest is None or cap < narrowest:
                    narrowest = cap
        if narrowest is None:
            return 100e9
        return narrowest / self._efficiency

    @property
    def path_classes(self) -> int:
        """Live solver variables: elastic path classes + pinned groups."""
        return len(self._classes) + len(self._groups)

    # -- flow lifecycle --------------------------------------------------

    def start_flow(self, spec: FlowSpec) -> None:
        """Admit ``spec`` at the current simulated time."""
        if spec.flow_id in self.active:
            raise ValueError(f"duplicate flow id: {spec.flow_id}")
        keys, latency = self._resolve_path(spec.src, spec.dst)
        size_bits = spec.size_bytes * 8.0
        flow = ActiveFlow(
            spec=spec,
            links=keys,
            remaining_bits=size_bits,
            latency_s=latency,
        )
        self.active[spec.flow_id] = flow
        self._service_counts[spec.service] = (
            self._service_counts.get(spec.service, 0) + 1
        )
        hosts = self.topology.hosts
        src_host = hosts.get(spec.src)
        dst_host = hosts.get(spec.dst)
        if src_host is not None:
            src_host.fluid_open(spec.flow_id, "tx")
            flow.rate_cells.append(src_host.fluid_tx_flows)
        if dst_host is not None:
            dst_host.fluid_open(spec.flow_id, "rx")
            flow.rate_cells.append(dst_host.fluid_rx_flows)
        dir_links = self._dir_links
        for key in keys:
            link, tx_port = dir_links[key]
            link.fluid_attach(tx_port, spec.flow_id)
            flow.rate_cells.append(link.fluid_flows[tx_port])

        now = self.env.now
        reason = self.policy.classify(spec, self)
        if reason is not None:
            flow.escalated = reason
            group = self.policy.group_key(spec, reason)
            flow.group = group
            flow.meta["escalated_s"] = now
            self.policy.record(spec, reason, now)
            cls = self._groups.get(group)
            if cls is None:
                cls = _PathClass(None, now)
                self._groups[group] = cls
            # The member's pinned demand and rate write-back land in
            # the dirty-group refresh at the head of the next solve
            # (deltas keyed off rate_bps == 0.0).
            self._dirty_groups[group] = None
        else:
            cls = self._classes.get(keys)
            if cls is None:
                cls = _PathClass(keys, now)
                self._classes[keys] = cls
            self._solver.add(keys)
            self._dirty_classes[keys] = None
            # Adopt the pre-solve class rate so link/host telemetry
            # stays coherent even if the upcoming solve leaves the
            # allocation numerically unchanged.
            rate = cls.rate_bps
            if rate > 0.0:
                flow.rate_bps = rate
                self._write_flow_rate(flow, rate)
        target = cls.bits + cls.rate_bps * (now - cls.t_base) + size_bits
        heappush(cls.targets, (target, spec.flow_id))
        cls.flows[spec.flow_id] = flow
        self._schedule_solve()

    def _finish_flow(self, flow: ActiveFlow, now: float) -> None:
        """Retire ``flow``; its completion target is already popped."""
        spec = flow.spec
        fid = spec.flow_id
        del self.active[fid]
        self._service_counts[spec.service] -= 1
        hosts = self.topology.hosts
        src_host = hosts.get(spec.src)
        dst_host = hosts.get(spec.dst)
        if src_host is not None:
            src_host.fluid_close(fid, "tx", spec.size_bytes)
        if dst_host is not None:
            dst_host.fluid_close(fid, "rx", spec.size_bytes)
        dir_links = self._dir_links
        for key in flow.links:
            link, tx_port = dir_links[key]
            link.fluid_detach(tx_port, fid)

        if flow.escalated is None:
            sig = flow.links
            self._solver.remove(sig)
            cls = self._classes[sig]
            del cls.flows[fid]
            if cls.flows:
                self._dirty_classes[sig] = None
            else:
                del self._classes[sig]
                self._dirty_classes.pop(sig, None)
        else:
            gkey = flow.group
            cls = self._groups[gkey]
            del cls.flows[fid]
            rate = flow.rate_bps
            if rate != 0.0:
                pin = self._solver.pin
                for key in flow.links:
                    pin(key, -rate)
            if cls.flows:
                self._dirty_groups[gkey] = None
            else:
                del self._groups[gkey]
                self._dirty_groups.pop(gkey, None)
        flow.remaining_bits = 0.0

        fct = now - spec.start_s + flow.latency_s
        record = FlowRecord(
            spec=spec,
            finish_s=now + flow.latency_s,
            fct_s=fct,
            goodput_bps=spec.size_bytes * 8.0 / fct,
            escalated=flow.escalated,
        )
        self.records.append(record)
        self.completed_payload_bytes += spec.size_bytes
        if flow.escalated is not None:
            self.escalated_completions += 1
        if _obs.enabled():
            _obs.observe("flowsim.fct_s", fct, service=spec.service)
            _obs.probe("flowsim.completed", service=spec.service)
            if flow.escalated is not None:
                _obs.complete(
                    f"escalated:{flow.escalated}",
                    flow.meta["escalated_s"], now,
                    track="flowsim/escalations",
                    flow=fid, reason=flow.escalated,
                    dst=spec.dst,
                )

    # -- per-flow write-back --------------------------------------------

    def _write_flow_rate(self, flow: ActiveFlow, rate: float) -> None:
        """Push ``rate`` into the flow's link/endpoint telemetry cells.

        The cells were resolved at admission (see ``start_flow``), so
        this is one dict store per cell — equivalent to calling
        ``fluid_set_rate`` on every hop and endpoint, without the
        per-call topology lookups.
        """
        fid = flow.spec.flow_id
        for cell in flow.rate_cells:
            cell[fid] = rate

    # -- class curve maintenance ----------------------------------------

    def _touch(self, cls: _PathClass, now: float) -> None:
        """Rebase the class curve and refresh its finish projection.

        Called whenever membership changed but the rate did not: a new
        member may carry the smallest completion target, so the
        projection must be recomputed even at an unchanged rate.
        """
        bits = cls.bits + cls.rate_bps * (now - cls.t_base)
        cls.bits = bits
        cls.t_base = now
        cls.version += 1
        if cls.targets and cls.rate_bps > 0.0:
            finish = now + (cls.targets[0][0] - bits) / cls.rate_bps
            self._finish_seq = seq = self._finish_seq + 1
            heappush(self._finish_heap, (finish, cls.version, seq, cls))

    def _set_class_rate(self, cls: _PathClass, rate: float,
                        now: float) -> None:
        """Rebase the curve at a new rate and write back to members."""
        bits = cls.bits + cls.rate_bps * (now - cls.t_base)
        cls.bits = bits
        cls.t_base = now
        cls.rate_bps = rate
        cls.version += 1
        for flow in cls.flows.values():
            flow.rate_bps = rate
            # _write_flow_rate, inlined: this is the hottest write-back
            # loop in the engine (once per member of every class whose
            # rate moved, every solve).
            fid = flow.spec.flow_id
            for cell in flow.rate_cells:
                cell[fid] = rate
        if cls.targets and rate > 0.0:
            finish = now + (cls.targets[0][0] - bits) / rate
            self._finish_seq = seq = self._finish_seq + 1
            heappush(self._finish_heap, (finish, cls.version, seq, cls))

    def _refresh_group(self, gkey: Tuple[str, str], now: float) -> None:
        """Recompute a pinned group's packet-derived rate after a
        membership change, applying per-link demand deltas.

        The policy's group rate is a pure function of membership (see
        ``escalate.py``), so recomputing only on membership change is
        result-identical to recomputing every solve.
        """
        cls = self._groups.get(gkey)
        if cls is None or not cls.flows:
            return
        members = list(cls.flows.values())
        rates = self.policy.pinned_rates(gkey, members, self)
        # Uniform per group by the policy contract; members may still
        # take different paths, so demand deltas apply per flow.
        rate = rates[members[0].spec.flow_id]
        pin = self._solver.pin
        for flow in members:
            old = flow.rate_bps
            if old == rate:
                continue
            delta = rate - old
            for key in flow.links:
                pin(key, delta)
            flow.rate_bps = rate
            self._write_flow_rate(flow, rate)
        bits = cls.bits + cls.rate_bps * (now - cls.t_base)
        cls.bits = bits
        cls.t_base = now
        cls.rate_bps = rate
        cls.version += 1
        if cls.targets and rate > 0.0:
            finish = now + (cls.targets[0][0] - bits) / rate
            self._finish_seq = seq = self._finish_seq + 1
            heappush(self._finish_heap, (finish, cls.version, seq, cls))

    # -- the event-driven solve loop ------------------------------------

    def _schedule_solve(self) -> None:
        """Coalesce re-solves: one flow-level event per timestamp."""
        if self._solve_pending:
            return
        self._solve_pending = True
        self.env.call_at(self.env.now, self._solve_cycle,
                         priority=FLOW_LEVEL_PRIORITY)

    def _solve_cycle(self) -> None:
        self._solve_pending = False
        now = self.env.now
        self._complete_due(now)
        self._resolve(now)

    def _complete_due(self, now: float) -> None:
        """Finish every flow whose class curve has reached its target."""
        heap = self._finish_heap
        active = self.active
        while heap:
            finish_s, version, _seq, cls = heap[0]
            if finish_s > now:
                break
            heappop(heap)
            if version != cls.version:
                continue
            cls.version += 1
            bits_now = cls.bits + cls.rate_bps * (now - cls.t_base)
            targets = cls.targets
            while targets and targets[0][0] - bits_now <= _COMPLETION_EPS_BITS:
                _target, fid = heappop(targets)
                self._finish_flow(active[fid], now)
            # The class (if it survives) was dirty-marked by the
            # departures; the solve that follows re-projects it.

    def _resolve(self, now: float) -> None:
        """Re-allocate rates and aim the next completion wake-up."""
        self.solves += 1
        obs_on = _obs.enabled()
        if obs_on:
            t0 = process_time()  # detlint: ok(obs-only solve-duration metric)
        if not self.active:
            self._dirty_classes.clear()
            self._dirty_groups.clear()
            self._next_finish_s = _INF
            return

        # Pinned groups first: membership changes recompute the
        # packet-derived rate and shift per-link demand by deltas.
        dirty_groups = self._dirty_groups
        if dirty_groups:
            for gkey in dirty_groups:
                self._refresh_group(gkey, now)
            dirty_groups.clear()

        # Elastic classes: one solver variable per distinct path.  The
        # solver reports which classes moved since the previous solve,
        # so unchanged classes cost nothing here — no per-class scan.
        rate_changes = 0
        classes = self._classes
        if classes:
            changed = self._solver.resolve()
            for sig, rate in changed.items():
                self._set_class_rate(classes[sig], rate, now)
            rate_changes = len(changed)
            dirty = self._dirty_classes
            if dirty:
                # Dirty but rate-unchanged classes (new member, new
                # completion target) still need their projection
                # re-aimed; dead sigs may linger in the dirty set.
                for sig in dirty:
                    if sig not in changed:
                        cls = classes.get(sig)
                        if cls is not None:
                            self._touch(cls, now)
        self._dirty_classes.clear()

        # Earliest valid projection across all classes.
        heap = self._finish_heap
        while heap:
            _finish, version, _seq, cls = heap[0]
            if version == cls.version:
                break
            heappop(heap)
        next_finish = heap[0][0] if heap else _INF
        self._next_finish_s = next_finish

        if obs_on:
            solve_ms = (process_time() - t0) * 1e3  # detlint: ok(obs-only solve-duration metric)
            _obs.observe("flowsim.solve_ms", solve_ms)
            _obs.gauge("flowsim.path_classes", float(self.path_classes))
            _obs.probe("flowsim.class_rate_changes", float(rate_changes))
            _obs.probe("flowsim.solves")
            _obs.sample("flowsim/active_flows", now, float(len(self.active)))

        if next_finish is not _INF:
            self._set_wake(next_finish)

    # -- the single live wake-up ----------------------------------------

    def _set_wake(self, when: float) -> None:
        """Aim the completion wake-up at ``when``, reusing or cancelling
        the pending one instead of piling stale events into the heap."""
        handle = self._wake_handle
        if handle is not None:
            if self._wake_at <= when:
                # Fires at or before the new projection; on firing it
                # re-aims from _next_finish_s, so no new event needed.
                self.wake_reused += 1
                return
            handle.cancel()
            self.wake_cancelled += 1
        self._wake_handle = self.env.call_at(
            when, self._on_wake, priority=FLOW_LEVEL_PRIORITY)
        self._wake_at = when
        self.wake_scheduled += 1

    def _on_wake(self) -> None:
        self._wake_handle = None
        self._wake_at = _INF
        target = self._next_finish_s
        if target is _INF or not self.active:
            return
        if self.env.now < target:
            # The projection moved later since this wake-up was
            # scheduled; re-aim without paying a solve.
            self.wake_stale += 1
            self._set_wake(target)
            return
        if not self._solve_pending:
            self._solve_cycle()

    # -- aggregate statistics -------------------------------------------

    @property
    def escalations(self) -> Dict[str, int]:
        """Escalation counts by reason (delegates to the policy)."""
        return dict(self.policy.escalations)

    def summary(self) -> Dict[str, float]:
        """Aggregate completion statistics over all finished flows."""
        if not self.records:
            return {
                "flows": 0.0,
                "payload_bytes": 0.0,
                "mean_fct_s": 0.0,
                "p99_fct_s": 0.0,
                "mean_goodput_bps": 0.0,
                "escalated": 0.0,
                "solves": float(self.solves),
            }
        fcts = sorted(record.fct_s for record in self.records)
        goodputs = [record.goodput_bps for record in self.records]
        return {
            "flows": float(len(self.records)),
            "payload_bytes": self.completed_payload_bytes,
            "mean_fct_s": sum(fcts) / len(fcts),
            "p99_fct_s": fcts[int(0.99 * (len(fcts) - 1))],
            "mean_goodput_bps": sum(goodputs) / len(goodputs),
            "escalated": float(self.escalated_completions),
            "solves": float(self.solves),
        }
