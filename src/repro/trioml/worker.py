"""The Trio-ML end host (§6.1).

Workers stream gradients to the router with DPDK-style UDP packets: the
model's gradient vector is split into *blocks* (up to 1024 gradients, one
packet per block per worker), and a ``window`` parameter bounds the
number of outstanding blocks awaiting aggregation.  Result packets arrive
by multicast; a degraded result (straggler mitigation, §5) carries
``src_cnt`` so receivers can divide the partial aggregate by the number
of contributors — and a worker receiving a result for a block it has not
sent yet (because it is the straggler) abandons that stale send and moves
on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import HeaderError
from repro.net.host import Host
from repro.sim import Environment
from repro.trioml.protocol import (
    MAX_GRADIENTS_PER_PACKET,
    TRIO_ML_UDP_PORT,
    TrioMLHeader,
    decode_trio_ml,
    encode_trio_ml,
)

__all__ = ["BlockResult", "TrioMLWorker"]


@dataclass
class BlockResult:
    """One aggregated block as received by a worker."""

    block_id: int
    values: List[int]
    src_cnt: int
    degraded: bool
    gen_id: int

    def mean(self) -> List[float]:
        """Per-gradient mean over the sources that contributed."""
        if self.src_cnt == 0:
            return [0.0] * len(self.values)
        return [value / self.src_cnt for value in self.values]


@dataclass
class _AllreduceState:
    """Bookkeeping of one in-progress allreduce call."""

    num_blocks: int
    gen: int
    results: Dict[int, BlockResult] = None
    sent: set = None
    outstanding: int = 0
    next_idx: int = 0
    done: bool = False

    def __post_init__(self):
        self.results = {}
        self.sent = set()


class TrioMLWorker(Host):
    """One training worker speaking the Trio-ML protocol."""

    def __init__(
        self,
        env: Environment,
        name: str,
        src_id: int,
        job_id: int,
        mac: MACAddress,
        ip: IPv4Address,
        router_mac: MACAddress,
        service_ip: IPv4Address,
        grads_per_packet: int = MAX_GRADIENTS_PER_PACKET,
        window: int = 4096,
        straggle_hook: Optional[Callable[[int], float]] = None,
        retransmit_timeout_s: Optional[float] = None,
    ):
        """``service_ip`` is the router address aggregation packets are
        sent to; ``straggle_hook(block_id)`` may return seconds of delay
        injected before sending that block (straggler generation).

        ``retransmit_timeout_s`` enables loss recovery (§7): blocks whose
        result has not arrived within the timeout are re-sent.  The
        paper's experiments run with retransmission *disabled* (it causes
        spurious retransmissions during straggling periods, §6.1), so the
        default is None.
        """
        super().__init__(env, name=name, mac=mac, ip=ip)
        if not 1 <= grads_per_packet <= MAX_GRADIENTS_PER_PACKET:
            raise ValueError(
                f"gradients per packet must be 1..{MAX_GRADIENTS_PER_PACKET}"
            )
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.src_id = src_id
        self.job_id = job_id
        self.router_mac = MACAddress(router_mac)
        self.service_ip = IPv4Address(service_ip)
        self.grads_per_packet = grads_per_packet
        self.window = window
        self.straggle_hook = straggle_hook
        self.retransmit_timeout_s = retransmit_timeout_s
        self.retransmissions = 0
        self.gen_id = 0
        self.blocks_sent = 0
        self.blocks_skipped = 0
        self.results_received = 0
        self.degraded_results = 0
        #: (gen, block_id) -> simulation time, for latency instrumentation.
        self.send_times: Dict[tuple, float] = {}
        self.result_times: Dict[tuple, float] = {}

    # ------------------------------------------------------------------

    def split_blocks(self, gradients: Sequence[int]) -> List[List[int]]:
        """Chunk a gradient vector into per-packet blocks (last one padded)."""
        per = self.grads_per_packet
        blocks: List[List[int]] = []
        for start in range(0, len(gradients), per):
            block = list(gradients[start:start + per])
            if len(block) < per:
                block.extend([0] * (per - len(block)))
            blocks.append(block)
        return blocks

    def allreduce(self, gradients: Sequence[int]):
        """Aggregate ``gradients`` across the job's workers.

        Process generator: the process's value is the ordered list of
        :class:`BlockResult` (one per block; degraded entries flagged).
        """
        self.gen_id = (self.gen_id + 1) & 0xFFFF
        gen = self.gen_id
        blocks = self.split_blocks(gradients)
        state = _AllreduceState(num_blocks=len(blocks), gen=gen)
        retransmitter = None
        if self.retransmit_timeout_s:
            retransmitter = self.env.process(
                self._retransmit_loop(state, blocks, gen),
                name=f"{self.name}:retx",
            )

        while len(state.results) < state.num_blocks:
            # Fill the window with fresh sends.
            while (state.next_idx < state.num_blocks
                   and state.outstanding < self.window):
                block_id = state.next_idx
                state.next_idx += 1
                if self.straggle_hook is not None:
                    delay = self.straggle_hook(block_id)
                    if delay and delay > 0:
                        yield self.env.delay(delay)
                        self._drain_inbox(state)
                if block_id in state.results:
                    # The block aged out while we were straggling; its
                    # partial result already arrived — abandon the send.
                    self.blocks_skipped += 1
                    continue
                yield from self._send_block(block_id, gen, blocks[block_id])
                state.sent.add(block_id)
                state.outstanding += 1
            if len(state.results) >= state.num_blocks:
                break
            packet = yield self.recv()
            self._record(packet, state)
        state.done = True
        if retransmitter is not None and retransmitter.is_alive:
            retransmitter.interrupt("allreduce complete")
        return [state.results[i] for i in range(state.num_blocks)]

    def _retransmit_loop(self, state: "_AllreduceState", blocks, gen: int):
        """Loss recovery (§7): resend blocks whose result never arrived.

        The aggregator deduplicates retransmissions via the block's
        received-source bitmask and replays cached Results for blocks
        that already completed.
        """
        from repro.sim import Interrupt

        timeout = self.retransmit_timeout_s
        try:
            while not state.done:
                yield self.env.delay(timeout)
                now = self.env.now
                stale = [
                    block_id for block_id in state.sent
                    if block_id not in state.results
                    and now - self.send_times.get((gen, block_id), now)
                    >= timeout
                ]
                for block_id in stale:
                    self.retransmissions += 1
                    yield from self._send_block(block_id, gen,
                                                blocks[block_id])
        except Interrupt:
            return

    def _drain_inbox(self, state: "_AllreduceState") -> None:
        """Consume already-queued result packets without blocking."""
        while True:
            packet = self.inbox.try_get()
            if packet is None:
                return
            self._record(packet, state)

    def _record(self, packet, state: "_AllreduceState") -> None:
        result = self._parse_result(packet, state.gen, state.num_blocks)
        if result is None or result.block_id in state.results:
            return
        state.results[result.block_id] = result
        self.result_times[(state.gen, result.block_id)] = self.env.now
        self.results_received += 1
        if result.degraded:
            self.degraded_results += 1
        if result.block_id in state.sent:
            state.outstanding -= 1

    def _send_block(self, block_id: int, gen: int, values: List[int]):
        if self.straggle_hook is not None:
            delay = self.straggle_hook(block_id)
            if delay and delay > 0:
                yield self.env.delay(delay)
        header = TrioMLHeader(
            job_id=self.job_id,
            block_id=block_id,
            src_id=self.src_id,
            grad_cnt=len(values),
            gen_id=gen,
        )
        payload = encode_trio_ml(header, values)
        self.blocks_sent += 1
        self.send_times[(gen, block_id)] = self.env.now
        yield self.send_udp(
            dst_mac=self.router_mac,
            dst_ip=self.service_ip,
            src_port=TRIO_ML_UDP_PORT,
            dst_port=TRIO_ML_UDP_PORT,
            payload=payload,
        )

    def _parse_result(self, packet, gen: int,
                      num_blocks: int) -> Optional[BlockResult]:
        try:
            __, __, udp, payload = packet.parse_udp()
        except HeaderError:
            return None
        if udp.dst_port != TRIO_ML_UDP_PORT:
            return None
        try:
            header, values = decode_trio_ml(payload)
        except ValueError:
            return None
        if header.job_id != self.job_id or not header.final:
            return None
        if header.gen_id != gen or header.block_id >= num_blocks:
            return None
        return BlockResult(
            block_id=header.block_id,
            values=values,
            src_cnt=header.src_cnt,
            degraded=header.degraded,
            gen_id=header.gen_id,
        )
