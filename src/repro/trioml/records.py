"""Trio-ML job and block records (Appendix A.1, Figures 17 and 18).

Both records are 58 bytes and live in the Shared Memory System; the hash
table maps ``(job_id, -1)`` to the job record and ``(job_id, block_id)``
to block records (Figure 9).  The Python objects mirror the packed state
for convenient manipulation; :meth:`pack`/:meth:`unpack` give the exact
wire/memory layout, and the aggregator additionally keeps each record's
*hot fields* (received-source count and bitmasks) in an aligned
shared-memory scratch area so the RMW engines can update them with
ordinary 8-byte operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.microcode.layout import StructLayout

__all__ = ["BlockRecord", "JobRecord", "JOB_RECORD_LAYOUT",
           "BLOCK_RECORD_LAYOUT"]

#: Figure 17, verbatim field widths — 58 bytes.
JOB_RECORD_LAYOUT = StructLayout(
    "trio_ml_job_ctx_t",
    [
        ("block_curr_cnt", 16),   # current number of active blocks
        ("block_cnt_max", 12),    # maximum number of concurrent blocks
        ("block_grad_max", 12),   # maximum number of gradients per block
        ("block_exp", 8),         # block timeout interval in ms
        ("block_total_cnt", 32),  # job's cumulative blocks count
        ("out_src_addr", 32),     # Result packet source IP
        ("out_dst_addr", 32),     # Result packet destination IP
        ("out_nh_addr", 32),      # pointer to egress forward chain
        (None, 24),               # unused for byte alignment
        ("src_cnt", 8),           # number of ML sources in the job
        ("src_mask_0", 64),       # bitmask field for job's sources
        ("src_mask_1", 64),
        ("src_mask_2", 64),
        ("src_mask_3", 64),
    ],
)

#: Figure 18, verbatim field widths — 58 bytes.
BLOCK_RECORD_LAYOUT = StructLayout(
    "trio_ml_block_ctx_t",
    [
        ("block_exp", 8),          # block timeout interval in ms
        ("block_age", 8),          # age of the current block
        ("block_start_time", 64),  # start time of the current block
        ("job_ctx_paddr", 32),     # pointer to the job record
        ("aggr_paddr", 32),        # pointer to the aggregation buffer
        (None, 20),                # unused for byte alignment
        ("grad_cnt", 12),          # number of gradients in the block
        (None, 24),                # unused for byte alignment
        ("rcvd_cnt", 8),           # number of received ML sources
        ("rcvd_mask_0", 64),       # bitmask field for received sources
        ("rcvd_mask_1", 64),
        ("rcvd_mask_2", 64),
        ("rcvd_mask_3", 64),
    ],
)

assert JOB_RECORD_LAYOUT.size_bytes == 58, "Figure 17 says 58 bytes"
assert BLOCK_RECORD_LAYOUT.size_bytes == 58, "Figure 18 says 58 bytes"


def _split_mask(mask: int) -> List[int]:
    """Split a wide bitmask into four 64-bit words (word 0 = sources 0-63)."""
    return [(mask >> (64 * i)) & (2**64 - 1) for i in range(4)]


def _join_mask(words: Sequence[int]) -> int:
    accum = 0
    for i, word in enumerate(words):
        accum |= (word & (2**64 - 1)) << (64 * i)
    return accum


@dataclass
class JobRecord:
    """Control-plane job record (Figure 17), created at job configuration
    time and persisting until the job is complete."""

    job_id: int
    src_cnt: int
    src_mask: int                 # combined 256-bit participation mask
    block_grad_max: int
    block_exp_ms: int
    out_src_addr: int = 0         # Result packet source IP (as int)
    out_dst_addr: int = 0         # Result packet destination IP (as int)
    out_nh_addr: int = 0          # pointer to egress forward chain
    block_cnt_max: int = 4095
    block_curr_cnt: int = 0
    block_total_cnt: int = 0
    #: Address of the packed record in the Shared Memory System.
    paddr: int = 0

    SIZE = JOB_RECORD_LAYOUT.size_bytes

    def pack(self) -> bytes:
        words = _split_mask(self.src_mask)
        return JOB_RECORD_LAYOUT.pack(
            block_curr_cnt=self.block_curr_cnt,
            block_cnt_max=self.block_cnt_max,
            block_grad_max=self.block_grad_max,
            block_exp=self.block_exp_ms,
            block_total_cnt=self.block_total_cnt & 0xFFFFFFFF,
            out_src_addr=self.out_src_addr,
            out_dst_addr=self.out_dst_addr,
            out_nh_addr=self.out_nh_addr,
            src_cnt=self.src_cnt,
            src_mask_0=words[0],
            src_mask_1=words[1],
            src_mask_2=words[2],
            src_mask_3=words[3],
        )

    @classmethod
    def unpack(cls, data: Sequence[int], job_id: int = 0) -> "JobRecord":
        fields = JOB_RECORD_LAYOUT.unpack(data)
        return cls(
            job_id=job_id,
            src_cnt=fields["src_cnt"],
            src_mask=_join_mask(
                [fields[f"src_mask_{i}"] for i in range(4)]
            ),
            block_grad_max=fields["block_grad_max"],
            block_exp_ms=fields["block_exp"],
            out_src_addr=fields["out_src_addr"],
            out_dst_addr=fields["out_dst_addr"],
            out_nh_addr=fields["out_nh_addr"],
            block_cnt_max=fields["block_cnt_max"],
            block_curr_cnt=fields["block_curr_cnt"],
            block_total_cnt=fields["block_total_cnt"],
        )


@dataclass
class BlockRecord:
    """Data-plane block record (Figure 18), created on the first packet of
    a block and removed when the block's result has been generated."""

    job_id: int
    block_id: int
    gen_id: int
    grad_cnt: int
    block_exp_ms: int
    block_start_time: int         # nanoseconds
    job_ctx_paddr: int
    aggr_paddr: int
    rcvd_cnt: int = 0
    rcvd_mask: int = 0
    block_age: int = 0
    #: Address of the packed record in the Shared Memory System.
    paddr: int = 0
    #: Address of the aligned hot area ([rcvd_cnt:8B][mask:4x8B]) used for
    #: RMW updates (model detail; see module docstring).
    hot_paddr: int = 0
    #: Runtime-only guard: set by whichever thread (packet or timer) wins
    #: the right to generate this block's result, so completion and
    #: age-out cannot both fire.
    completing: bool = False
    #: Runtime-only: total *workers* represented by the contributions so
    #: far (a leaf packet counts 1; a first-level partial counts its own
    #: src_cnt), so hierarchical Results report worker counts.
    contrib_cnt: int = 0
    #: Runtime-only: a lower level already degraded this block.
    any_degraded: bool = False
    #: Runtime-only: highest age_op seen from lower levels.
    max_age_op: int = 0

    SIZE = BLOCK_RECORD_LAYOUT.size_bytes
    #: The aligned scratch area for RMW-updated fields.
    HOT_SIZE = 40

    def pack(self) -> bytes:
        words = _split_mask(self.rcvd_mask)
        return BLOCK_RECORD_LAYOUT.pack(
            block_exp=self.block_exp_ms,
            block_age=self.block_age,
            block_start_time=self.block_start_time & (2**64 - 1),
            job_ctx_paddr=self.job_ctx_paddr,
            aggr_paddr=self.aggr_paddr,
            grad_cnt=self.grad_cnt,
            rcvd_cnt=self.rcvd_cnt,
            rcvd_mask_0=words[0],
            rcvd_mask_1=words[1],
            rcvd_mask_2=words[2],
            rcvd_mask_3=words[3],
        )

    @classmethod
    def unpack(cls, data: Sequence[int], job_id: int = 0,
               block_id: int = 0, gen_id: int = 0) -> "BlockRecord":
        fields = BLOCK_RECORD_LAYOUT.unpack(data)
        return cls(
            job_id=job_id,
            block_id=block_id,
            gen_id=gen_id,
            grad_cnt=fields["grad_cnt"],
            block_exp_ms=fields["block_exp"],
            block_start_time=fields["block_start_time"],
            job_ctx_paddr=fields["job_ctx_paddr"],
            aggr_paddr=fields["aggr_paddr"],
            rcvd_cnt=fields["rcvd_cnt"],
            rcvd_mask=_join_mask(
                [fields[f"rcvd_mask_{i}"] for i in range(4)]
            ),
            block_age=fields["block_age"],
        )
