"""Trio-ML: in-network aggregation and straggler mitigation on Trio (§4, §5).

* :mod:`repro.trioml.protocol` — the Trio-ML packet format (Figure 7) and
  12-byte header bit layout (Figure 8).
* :mod:`repro.trioml.records` — job records (Figure 17) and block records
  (Figure 18) with their exact bit widths, packed into the Shared Memory
  System.
* :mod:`repro.trioml.aggregator` — the aggregation Microcode program
  workflow (Figure 10): head phase, 64-byte tail-chunk loop, RMW-engine
  gradient summation, completion check, 256-byte result-build loop,
  multicast/hierarchical result delivery.
* :mod:`repro.trioml.straggler` — timer-thread straggler detection (REF
  flag scanning, N parallel threads each walking 1/N of the table) and
  partial-result mitigation (age_op / degraded / src_cnt).
* :mod:`repro.trioml.worker` — the DPDK-style end host: window-based
  gradient streaming, degraded-result handling.
* :mod:`repro.trioml.config` — control-plane job setup, including
  hierarchical aggregation across PFEs.
"""

from repro.trioml.protocol import (
    TRIO_ML_HEADER_LAYOUT,
    TRIO_ML_UDP_PORT,
    TrioMLHeader,
    decode_trio_ml,
    encode_trio_ml,
)
from repro.trioml.records import BlockRecord, JobRecord
from repro.trioml.aggregator import TrioMLAggregator
from repro.trioml.straggler import StragglerDetector
from repro.trioml.worker import BlockResult, TrioMLWorker
from repro.trioml.config import (
    TrioMLJobConfig,
    setup_hierarchical_job,
    setup_remote_first_level_job,
    setup_single_level_job,
)

__all__ = [
    "BlockRecord",
    "BlockResult",
    "JobRecord",
    "StragglerDetector",
    "TRIO_ML_HEADER_LAYOUT",
    "TRIO_ML_UDP_PORT",
    "TrioMLAggregator",
    "TrioMLHeader",
    "TrioMLJobConfig",
    "TrioMLWorker",
    "decode_trio_ml",
    "encode_trio_ml",
    "setup_hierarchical_job",
    "setup_remote_first_level_job",
    "setup_single_level_job",
]
