"""In-network straggler detection and mitigation (§5).

Detection uses Trio's timer threads and the hash hardware's per-record
'Recently Referenced' (REF) flag: REF is set when a record is created and
on every lookup.  N timer threads run with an interarrival of
``timeout / N``; each visits 1/N of the aggregation table, checks each
record's REF flag and clears it.  A clear flag means the record has not
been touched for at least one full timer interval — the block has aged
out, so some source is straggling.

Mitigation follows the paper: give up on the straggler(s) and send a
partial aggregation Result to **all** workers (including the stragglers)
with ``age_op`` set, the ``degraded`` bit on, and ``src_cnt`` carrying the
number of sources that did contribute; receivers divide the aggregate by
that count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.obs import bus as _obs
from repro.trio.pfe import PFE
from repro.trio.timers import TimerGroup
from repro.trioml.aggregator import TrioMLAggregator
from repro.trioml.records import BlockRecord

__all__ = ["StragglerDetector"]

#: age_op value signalling the block aged out due to a straggler.
AGE_OP_TIMED_OUT = 1

#: Instructions charged per scanned record (REF test-and-clear + branch).
SCAN_INSTRUCTIONS_PER_RECORD = 2


@dataclass
class MitigationEvent:
    """One aged-out block that was completed partially."""

    time: float
    job_id: int
    block_id: int
    gen_id: int
    rcvd_cnt: int
    waited_s: float


class StragglerDetector:
    """Periodic multi-thread scanning of the aggregation hash table."""

    def __init__(self, aggregator: TrioMLAggregator, num_threads: int = 100,
                 timeout_s: float = 0.010):
        """``num_threads`` parallel timer threads (§6.1 uses N = 100) with
        a shared ``timeout_s`` period (default 10 ms)."""
        if num_threads < 1:
            raise ValueError(f"need at least one scan thread: {num_threads}")
        if timeout_s <= 0:
            raise ValueError(f"timeout must be positive: {timeout_s}")
        self.aggregator = aggregator
        self.num_threads = num_threads
        self.timeout_s = timeout_s
        self.group: Optional[TimerGroup] = None
        self.records_scanned = 0
        self.mitigations: List[MitigationEvent] = []

    @property
    def pfe(self) -> PFE:
        return self.aggregator.pfe

    def start(self) -> TimerGroup:
        """Launch the timer-thread group on the aggregator's PFE."""
        if self.aggregator.pfe is None:
            raise RuntimeError("aggregator is not installed on a PFE")
        self.group = self.pfe.timers.launch_periodic(
            name="trio-ml-straggler",
            num_threads=self.num_threads,
            period_s=self.timeout_s,
            callback=self._scan,
        )
        return self.group

    def stop(self) -> None:
        if self.group is not None:
            self.pfe.timers.cancel(self.group)

    # ------------------------------------------------------------------

    def _scan(self, tctx, thread_index: int):
        """One timer firing: walk this thread's table segment."""
        table = self.pfe.hash_table
        records = yield from table.scan_segment(
            thread_index % self.num_threads, self.num_threads
        )
        for record in records:
            self.records_scanned += 1
            yield from tctx.execute(SCAN_INSTRUCTIONS_PER_RECORD)
            key = record.key
            if not isinstance(key, tuple) or len(key) != 2 or key[1] == -1:
                continue  # job records never age out
            block = record.value
            if not isinstance(block, BlockRecord):
                continue
            if record.ref_flag:
                # Recently referenced: clear and give it another interval.
                record.ref_flag = False
                continue
            if block.completing:
                continue
            # Aged out: the flag was never re-set since our last visit.
            if table.get_nowait(key) is not record:
                continue  # deleted concurrently
            block.completing = True
            block.block_age = min(255, block.block_age + 1)
            yield from self._mitigate(tctx, block)

    def _mitigate(self, tctx, block: BlockRecord):
        """Complete the aged block partially and notify every worker."""
        runtime = self.aggregator.jobs.get(block.job_id)
        if runtime is None:
            return
        now = tctx.now
        result = yield from self.aggregator.generate_result(
            tctx, runtime, block, degraded=True, age_op=AGE_OP_TIMED_OUT
        )
        self.aggregator._emit_result(runtime, result, pctx=None)
        waited_s = now - block.block_start_time / 1e9
        self.mitigations.append(
            MitigationEvent(
                time=now,
                job_id=block.job_id,
                block_id=block.block_id,
                gen_id=block.gen_id,
                rcvd_cnt=block.rcvd_cnt,
                waited_s=waited_s,
            )
        )
        obs = _obs.session()
        if obs is not None:
            obs.observe("trioml.mitigation_latency_s", waited_s)
            obs.probe("trioml.mitigations")
            obs.instant(
                f"mitigate {block.job_id}/{block.block_id}/g{block.gen_id}",
                now, track="trioml/blocks", rcvd_cnt=block.rcvd_cnt)
