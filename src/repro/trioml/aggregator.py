"""The Trio-ML aggregation application (§4, Figure 10).

Each aggregation packet is processed by one PPE thread:

1. extract ``job_id``/``block_id`` and look up the block record;
2. if absent, look up the job record and create the block record (with
   its aggregation buffer in the Shared Memory System);
3. duplicate-detect the source via the received-source bitmask (an RMW
   fetch-and-or);
4. aggregate gradients — phase one from the packet head already in LMEM,
   phase two looping over the tail in 64-byte chunks (16 gradients each,
   ≈1.2 run-time instructions per gradient, §6.3), with the summation
   itself performed by the read-modify-write engines;
5. on the last packet of the block, build the Result packet by pulling
   256-byte chunks from the aggregation buffer, delete the block record,
   and launch forwarding (multicast to the workers, or unicast up the
   aggregation hierarchy).

Roles: a ``single``/``top`` aggregator multicasts final results to the
job's group; a ``first_level`` aggregator (hierarchical mode, Figure 11b)
sends its partial result directly across the fabric to the top-level PFE,
which sees it as just another source.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING, Tuple

from repro.net.addressing import IPv4Address, MACAddress
from repro.net.headers import HeaderError
from repro.net.packet import Packet
from repro.obs import bus as _obs
from repro.trio.counters import PacketByteCounter
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext
from repro.trio.rmw import RMWOpKind
from repro.trioml.protocol import (
    TRIO_ML_UDP_PORT,
    TrioMLHeader,
    decode_trio_ml,
    encode_trio_ml,
)
from repro.trioml.records import BlockRecord, JobRecord

if TYPE_CHECKING:
    from repro.nf.base import StateSpec

__all__ = ["JobRuntime", "TrioMLAggregator"]

#: The tail is aggregated in 64-byte chunks: 16 32-bit gradients (§4).
TAIL_CHUNK_BYTES = 64
#: The Result packet tail is built in 256-byte chunks (§4).
RESULT_CHUNK_BYTES = 256
#: Run-time instructions per aggregated gradient (§6.3: ≈1.2).
INSTRUCTIONS_PER_GRADIENT = 1.2
#: Static size of the aggregation Microcode program (§6.3: ≈60).
STATIC_PROGRAM_INSTRUCTIONS = 60
#: Entries remembered per job to recognise late packets for blocks whose
#: result was already generated (model detail; see DESIGN.md).
COMPLETED_HISTORY = 65536
#: Completed Results kept for loss-recovery replay (§7).
RESULT_CACHE_MAX = 8192


@dataclass
class JobRuntime:
    """Per-job data-plane runtime state kept alongside the job record."""

    record: JobRecord
    #: 'single', 'first_level' (same chassis, feeds the top PFE over the
    #: fabric), 'remote_first_level' (another device, feeds the next
    #: level by unicast IP forwarding, §4), or 'top'.
    role: str = "single"
    #: For first_level: name of the top-level aggregator PFE.
    top_pfe: Optional[str] = None
    #: src_id this aggregator uses when feeding the next level.
    own_src_id: int = 0
    result_src_ip: IPv4Address = IPv4Address(0)
    result_dst_ip: IPv4Address = IPv4Address(0)
    result_src_mac: MACAddress = MACAddress(0)
    result_dst_mac: MACAddress = MACAddress.broadcast()
    gen_id: int = 0
    #: (block_id, gen_id) -> src_cnt of recently completed blocks.
    completed: Dict[Tuple[int, int], int] = field(default_factory=dict)
    blocks_completed: int = 0
    blocks_degraded: int = 0
    #: Loss recovery (§7): cache completed Results so retransmissions for
    #: already-completed blocks get the Result replayed instead of lost.
    loss_recovery: bool = False
    result_cache: Dict[Tuple[int, int], Packet] = field(default_factory=dict)
    results_replayed: int = 0


@dataclass
class BlockStats:
    """Completion record for instrumentation."""

    job_id: int
    block_id: int
    gen_id: int
    start_time: float
    finish_time: float
    degraded: bool
    src_cnt: int


class TrioMLAggregator(TrioApplication):
    """The Trio-ML Microcode program, installed on one PFE."""

    name = "trio-ml"

    #: Instruction charges for the fixed (non-loop) parts of the program.
    PARSE_INSTRUCTIONS = 8
    CREATE_INSTRUCTIONS = 10
    COMPLETE_CHECK_INSTRUCTIONS = 3
    RESULT_CHUNK_INSTRUCTIONS = 4

    def __init__(self, tail_chunk_bytes: int = TAIL_CHUNK_BYTES,
                 result_chunk_bytes: int = RESULT_CHUNK_BYTES):
        if tail_chunk_bytes % 4 or tail_chunk_bytes <= 0:
            raise ValueError("tail chunk must be a positive multiple of 4")
        self.tail_chunk_bytes = tail_chunk_bytes
        self.result_chunk_bytes = result_chunk_bytes
        self.pfe: Optional[PFE] = None
        self.jobs: Dict[int, JobRuntime] = {}
        #: Per-packet time spent in Trio (Fig. 15 instrumentation).
        self.packet_latencies: List[float] = []
        self.block_stats: List[BlockStats] = []
        self.packets_aggregated = 0
        self.gradients_aggregated = 0
        self.duplicates = 0
        self.stale_packets = 0
        self.no_job_drops = 0
        self.block_cap_drops = 0

    # ------------------------------------------------------------------
    # NF wrapper (repro.nf)
    # ------------------------------------------------------------------

    @classmethod
    def nf_state_resources(cls, max_blocks: int, grads_per_block: int,
                           timer_threads: int = 0) -> Tuple["StateSpec", ...]:
        """The aggregation path's state footprint in NF terms.

        This is what :class:`repro.nf.aggregate.AggregateNF` declares to
        the chain compiler: block records in the hash block, one 32-bit
        aggregation slot per gradient (the RMW add32 targets), and the
        drop counter.  ``timer_threads`` > 0 adds the straggler-timeout
        sweep threads.  Imported lazily — :mod:`repro.nf` wraps this
        module, so a top-level import would be circular.
        """
        from repro.nf.base import (
            STATE_COUNTER,
            STATE_HASH_ENTRIES,
            STATE_REGISTER_ARRAY,
            STATE_TIMER_THREADS,
            StateSpec,
        )

        specs = [
            StateSpec(STATE_HASH_ENTRIES, "blocks", entries=max_blocks,
                      width_bits=64),
            StateSpec(STATE_REGISTER_ARRAY, "agg_buffers",
                      entries=max_blocks * grads_per_block, width_bits=32),
            StateSpec(STATE_COUNTER, "drops", entries=1, width_bits=64),
        ]
        if timer_threads:
            specs.append(
                StateSpec(STATE_TIMER_THREADS, "straggler_sweep",
                          threads=timer_threads)
            )
        return tuple(specs)

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def on_install(self, pfe: PFE) -> None:
        self.pfe = pfe
        self.drop_counter = PacketByteCounter(pfe.memory)
        if _obs.enabled():
            _obs.register_collector(self._obs_collect)

    def _obs_collect(self, registry) -> None:
        """Export the aggregator's own counters (runs once at finalize)."""
        pfe = self.pfe.name if self.pfe is not None else "?"
        counts = registry.counter(
            "trioml.packets", "aggregation packets by outcome",
            ("outcome", "pfe"))
        counts.inc(self.packets_aggregated, outcome="aggregated", pfe=pfe)
        counts.inc(self.duplicates, outcome="duplicate", pfe=pfe)
        counts.inc(self.stale_packets, outcome="stale", pfe=pfe)
        counts.inc(self.no_job_drops, outcome="no_job_drop", pfe=pfe)
        counts.inc(self.block_cap_drops, outcome="block_cap_drop", pfe=pfe)
        registry.counter(
            "trioml.gradients_aggregated", "gradients summed by the RMW "
            "engines", ("pfe",)
        ).inc(self.gradients_aggregated, pfe=pfe)

    def configure_job(self, runtime: JobRuntime) -> JobRuntime:
        """Install a job: allocate and pack its record, insert the hash
        entry keyed ``(job_id, -1)`` (Figure 9)."""
        record = runtime.record
        record.paddr = self.pfe.memory.alloc(JobRecord.SIZE, region="sram")
        self.pfe.memory.write_raw(record.paddr, record.pack())
        self.pfe.hash_table.insert_nowait((record.job_id, -1), runtime)
        self.jobs[record.job_id] = runtime
        return runtime

    def remove_job(self, job_id: int) -> None:
        """Tear a job down (job completion)."""
        runtime = self.jobs.pop(job_id, None)
        if runtime is None:
            return
        self.pfe.hash_table.delete_nowait((job_id, -1))
        self.pfe.memory.free(runtime.record.paddr, JobRecord.SIZE)

    def advance_generation(self, job_id: int, gen_id: int) -> None:
        """Move a job to a new training iteration's generation."""
        runtime = self.jobs[job_id]
        runtime.gen_id = gen_id
        runtime.completed.clear()
        runtime.result_cache.clear()

    # ------------------------------------------------------------------
    # Data plane (Figure 10 workflow)
    # ------------------------------------------------------------------

    def handle_packet(self, tctx: ThreadContext, pctx: PacketContext):
        yield from tctx.execute(self.PARSE_INSTRUCTIONS)
        try:
            __, ip, udp, payload = pctx.packet.parse_udp()
        except HeaderError:
            pctx.forward()
            return
        if udp.dst_port != TRIO_ML_UDP_PORT:
            # Not an aggregation packet: standard forwarding path.
            yield from tctx.execute(2)
            pctx.forward()
            return
        header, gradients = decode_trio_ml(payload)
        if header.final:
            # A final Result packet in transit (multi-device hierarchy,
            # §4): standard IP/multicast forwarding delivers it.
            yield from tctx.execute(2)
            pctx.forward()
            return
        key = (header.job_id, header.block_id)

        hash_rec = yield from tctx.hash_lookup(key)
        block: Optional[BlockRecord] = (
            hash_rec.value if hash_rec is not None else None
        )
        if block is None:
            job_rec = yield from tctx.hash_lookup((header.job_id, -1))
            if job_rec is None:
                # Through the thread context so deferred execute charges
                # fold into the XTXN (keeps RMW arrival times identical
                # to eager charging).
                yield from tctx.counter_inc(
                    self.drop_counter.addr, pctx.length
                )
                self.no_job_drops += 1
                pctx.drop()
                return
            runtime: JobRuntime = job_rec.value
            if (header.block_id, header.gen_id) in runtime.completed:
                # Late packet for an already-completed block: either the
                # sender straggled past the timeout, or its Result was
                # lost and this is a retransmission.  With loss recovery
                # enabled, replay the cached Result (§7).
                cached = runtime.result_cache.get(
                    (header.block_id, header.gen_id)
                ) if runtime.loss_recovery else None
                if cached is not None:
                    yield from tctx.execute(2)
                    runtime.results_replayed += 1
                    self._emit_result(runtime, cached.copy(), pctx)
                self.stale_packets += 1
                pctx.consume()
                return
            block = yield from self._create_block(tctx, runtime, header)
            if block is None:
                pctx.drop()
                return
        else:
            runtime = self.jobs.get(header.job_id)
            if runtime is None:
                pctx.drop()
                return
        if header.gen_id < block.gen_id:
            self.stale_packets += 1
            pctx.consume()
            return

        # Duplicate detection: fetch-and-or of this source's bit into the
        # received-source bitmask (serialised by the owning RMW engine).
        word_index, bit = divmod(header.src_id, 64)
        mask_addr = block.hot_paddr + 8 + 8 * word_index
        old_mask = yield from tctx.mem_fetch_and_op(
            RMWOpKind.FETCH_AND_OR, mask_addr, 1 << bit
        )
        if old_mask & (1 << bit):
            self.duplicates += 1
            pctx.consume()
            return
        block.rcvd_mask |= 1 << (header.src_id)
        block.contrib_cnt += header.src_cnt or 1
        if header.degraded:
            block.any_degraded = True
        block.max_age_op = max(block.max_age_op, header.age_op)

        yield from self._aggregate_gradients(tctx, pctx, block, gradients)

        # Completion check: RMW-increment the received-source count.
        yield from tctx.execute(self.COMPLETE_CHECK_INSTRUCTIONS)
        old_cnt = yield from tctx.mem_add32(block.hot_paddr, 1)
        block.rcvd_cnt = old_cnt + 1
        if block.rcvd_cnt >= runtime.record.src_cnt and not block.completing:
            block.completing = True
            result = yield from self.generate_result(
                tctx, runtime, block, degraded=False
            )
            self._emit_result(runtime, result, pctx)
        pctx.consume()
        latency = tctx.now - pctx.arrival_time
        self.packet_latencies.append(latency)
        obs = _obs.session()
        if obs is not None:
            obs.observe("trioml.packet_latency_s", latency,
                        pfe=self.pfe.name)

    def _create_block(self, tctx: ThreadContext, runtime: JobRuntime,
                      header: TrioMLHeader) -> Optional[BlockRecord]:
        """Insert a block record and initialise its aggregation buffer."""
        record = runtime.record
        if header.grad_cnt > record.block_grad_max:
            self.no_job_drops += 1
            return None
        if record.block_curr_cnt >= record.block_cnt_max:
            # Memory sharing across jobs: each job caps its concurrent
            # aggregation blocks (block_cnt_max, Figure 17).  The sender
            # will retry once earlier blocks complete.
            self.block_cap_drops += 1
            return None
        # Reserve the slot before any suspension (models a fetch-and-add
        # on the job record, so concurrent creations cannot overshoot).
        record.block_curr_cnt += 1
        yield from tctx.execute(self.CREATE_INSTRUCTIONS)
        memory = self.pfe.memory
        buf_bytes = 4 * header.grad_cnt
        aggr_paddr = memory.alloc(buf_bytes, region="dram")
        hot_paddr = memory.alloc(BlockRecord.HOT_SIZE, region="sram", align=8)
        block = BlockRecord(
            job_id=header.job_id,
            block_id=header.block_id,
            gen_id=header.gen_id,
            grad_cnt=header.grad_cnt,
            block_exp_ms=record.block_exp_ms,
            block_start_time=int(tctx.now * 1e9),
            job_ctx_paddr=record.paddr,
            aggr_paddr=aggr_paddr,
        )
        block.paddr = memory.alloc(BlockRecord.SIZE, region="sram")
        block.hot_paddr = hot_paddr
        hash_rec, created = yield from tctx.hash_insert_if_absent(
            (header.job_id, header.block_id), block
        )
        if not created:
            # Another thread won the race; release what we allocated.
            record.block_curr_cnt -= 1
            memory.free(aggr_paddr, buf_bytes)
            memory.free(hot_paddr, BlockRecord.HOT_SIZE)
            memory.free(block.paddr, BlockRecord.SIZE)
            return hash_rec.value
        # Init Agg Buffer + write the packed record (Figure 10).
        memory.write_raw(hot_paddr, bytes(BlockRecord.HOT_SIZE))
        yield from memory.bulk_write(
            aggr_paddr, bytes(min(buf_bytes, 4096)),
            pre_delay_s=tctx._take_pending(), actor=tctx.thread_id,
        )
        if buf_bytes > 4096:
            memory.write_raw(aggr_paddr, bytes(buf_bytes))
        memory.write_raw(block.paddr, block.pack())
        record.block_total_cnt += 1
        obs = _obs.session()
        if obs is not None:
            obs.probe("trioml.blocks_created", pfe=self.pfe.name)
            obs.instant(
                f"create {block.job_id}/{block.block_id}/g{block.gen_id}",
                tctx.now, track="trioml/blocks")
        return block

    def _aggregate_gradients(self, tctx: ThreadContext, pctx: PacketContext,
                             block: BlockRecord, gradients: List[int]):
        """Figure 10's two aggregation phases.

        Phase one covers the gradients whose bytes arrived in the packet
        head (already in LMEM); phase two loops over the tail in 64-byte
        chunks, each pulled from the Memory and Queueing Subsystem by an
        XTXN.  The adds themselves are performed by the RMW engines.
        """
        n = len(gradients)
        header_bytes = 14 + 20 + 8 + TrioMLHeader.SIZE
        head_payload = max(0, self.pfe.config.head_size_bytes - header_bytes)
        head_grads = min(n, head_payload // 4)
        instructions = 0
        if head_grads:
            instructions += math.ceil(head_grads * INSTRUCTIONS_PER_GRADIENT)
        remaining = n - head_grads
        chunk_capacity = self.tail_chunk_bytes // 4
        num_chunks = 0
        while remaining > 0:
            chunk_grads = min(remaining, chunk_capacity)
            instructions += math.ceil(chunk_grads * INSTRUCTIONS_PER_GRADIENT)
            num_chunks += 1
            remaining -= chunk_grads
        if num_chunks:
            # First chunk through the byte-copying path (keeps the LMEM
            # behaviour observable); the rest as lumped equivalent latency.
            yield from tctx.read_tail(0, self.tail_chunk_bytes)
            yield from tctx.read_tail_chunks(num_chunks - 1)
        yield from tctx.execute(instructions)
        yield from self.pfe.memory.bulk_add32(
            block.aggr_paddr, gradients, pre_delay_s=tctx._take_pending(),
            actor=tctx.thread_id,
        )
        self.packets_aggregated += 1
        self.gradients_aggregated += n

    # ------------------------------------------------------------------
    # Result generation (shared with the straggler detector)
    # ------------------------------------------------------------------

    def generate_result(self, tctx: ThreadContext, runtime: JobRuntime,
                        block: BlockRecord, degraded: bool,
                        age_op: int = 0) -> Packet:
        """Build the Result packet and delete the block record.

        Generator returning the ready-to-send packet.  The caller decides
        how to launch forwarding (packet thread emits through the Reorder
        Engine; timer threads transmit directly).
        """
        memory = self.pfe.memory
        n_bytes = 4 * block.grad_cnt
        # The Figure 10 result loop pulls the buffer 256 bytes at a time;
        # per-chunk access latencies are sequential and unconditioned, so
        # they are charged lumped (timing-equivalent; see read_tail_chunks).
        n_chunks = math.ceil(n_bytes / self.result_chunk_bytes)
        aggregated = yield from memory.bulk_read(
            block.aggr_paddr, n_bytes, pre_delay_s=tctx._take_pending(),
            actor=tctx.thread_id,
        )
        if n_chunks > 1:
            yield self.pfe.env.delay(
                (n_chunks - 1)
                * memory.access_latency_s(block.aggr_paddr, n_bytes)
            )
        yield from tctx.execute(n_chunks * self.RESULT_CHUNK_INSTRUCTIONS)

        degraded = degraded or block.any_degraded
        src_cnt = block.contrib_cnt
        header = TrioMLHeader(
            job_id=block.job_id,
            block_id=block.block_id,
            src_id=runtime.own_src_id,
            grad_cnt=block.grad_cnt,
            gen_id=block.gen_id,
            age_op=max(age_op, block.max_age_op),
            final=runtime.role in ("single", "top"),
            degraded=degraded,
            src_cnt=src_cnt,
        )
        payload = header.pack() + bytes(aggregated)
        result = Packet.udp(
            src_mac=runtime.result_src_mac,
            dst_mac=runtime.result_dst_mac,
            src_ip=runtime.result_src_ip,
            dst_ip=runtime.result_dst_ip,
            src_port=TRIO_ML_UDP_PORT,
            dst_port=TRIO_ML_UDP_PORT,
            payload=payload,
        )

        # Delete Block Record; free the aggregation buffer (Figure 10).
        yield from tctx.hash_delete((block.job_id, block.block_id))
        memory.free(block.aggr_paddr, n_bytes)
        memory.free(block.hot_paddr, BlockRecord.HOT_SIZE)
        memory.free(block.paddr, BlockRecord.SIZE)
        runtime.record.block_curr_cnt -= 1
        runtime.completed[(block.block_id, block.gen_id)] = src_cnt
        if len(runtime.completed) > COMPLETED_HISTORY:
            oldest = next(iter(runtime.completed))
            del runtime.completed[oldest]
            runtime.result_cache.pop(oldest, None)
        if runtime.loss_recovery:
            runtime.result_cache[(block.block_id, block.gen_id)] = result
            if len(runtime.result_cache) > RESULT_CACHE_MAX:
                runtime.result_cache.pop(next(iter(runtime.result_cache)))
        runtime.blocks_completed += 1
        if degraded:
            runtime.blocks_degraded += 1
        start_time = block.block_start_time / 1e9
        self.block_stats.append(
            BlockStats(
                job_id=block.job_id,
                block_id=block.block_id,
                gen_id=block.gen_id,
                start_time=start_time,
                finish_time=tctx.now,
                degraded=degraded,
                src_cnt=src_cnt,
            )
        )
        obs = _obs.session()
        if obs is not None:
            obs.complete(
                f"block {block.job_id}/{block.block_id}/g{block.gen_id}",
                start_time, tctx.now, track="trioml/blocks",
                degraded=degraded, src_cnt=src_cnt)
            obs.observe("trioml.block_latency_s", tctx.now - start_time,
                        degraded=degraded)
            obs.probe("trioml.blocks_completed", degraded=degraded)
        return result

    def _emit_result(self, runtime: JobRuntime, result: Packet,
                     pctx: Optional[PacketContext]) -> None:
        """Launch forwarding for a Result packet."""
        if runtime.role == "first_level":
            # Feed the top-level aggregator PFE directly over the fabric,
            # without IP forwarding (§4, hierarchical aggregation).
            self.pfe.router.send_to_pfe(result, self.pfe.name, runtime.top_pfe)
            return
        if pctx is not None:
            pctx.emit(result)
        else:
            self.pfe.transmit(result)
