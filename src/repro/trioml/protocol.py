"""The Trio-ML packet format (Figures 7 and 8).

A Trio-ML aggregation packet is
``Ethernet | IPv4 | UDP | Trio-ML header | gradients``: UDP addressed to
the router with destination port 12000, a 12-byte Trio-ML header
describing the block of gradients, then up to 1024 gradients as 32-bit
integers (converted from floating point with ATP's scaling approach).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.microcode.layout import StructLayout

__all__ = [
    "MAX_GRADIENTS_PER_PACKET",
    "TRIO_ML_HEADER_LAYOUT",
    "TRIO_ML_UDP_PORT",
    "TrioMLHeader",
    "decode_trio_ml",
    "encode_trio_ml",
]

#: "Packets are addressed to the router with a pre-defined destination
#: port (e.g., 12000)" (§4).
TRIO_ML_UDP_PORT = 12000

#: "Up to 4096 bytes (1024 Gradients)" (Figure 7).
MAX_GRADIENTS_PER_PACKET = 1024

#: Figure 8, verbatim field widths — 12 bytes total.
TRIO_ML_HEADER_LAYOUT = StructLayout(
    "trio_ml_hdr_t",
    [
        ("job_id", 8),      # aggregation job id
        ("block_id", 32),   # aggregation block id
        ("age_op", 4),      # if the block has aged out
        ("final", 1),       # if the block is final block
        ("degraded", 1),    # aggregation is partial
        (None, 2),          # unused for byte alignment
        ("src_id", 8),      # source id of the packet
        ("src_cnt", 8),     # number of sources contributing
        ("gen_id", 16),     # generation id
        (None, 4),          # room to expand grad_cnt
        ("grad_cnt", 12),   # number of gradients
    ],
)

assert TRIO_ML_HEADER_LAYOUT.size_bytes == 12, "Figure 8 says 12 bytes"


@dataclass
class TrioMLHeader:
    """Parsed Trio-ML header (Figure 8)."""

    job_id: int
    block_id: int
    src_id: int
    grad_cnt: int
    gen_id: int = 0
    age_op: int = 0
    final: bool = False
    degraded: bool = False
    src_cnt: int = 0

    SIZE = TRIO_ML_HEADER_LAYOUT.size_bytes

    def pack(self) -> bytes:
        return TRIO_ML_HEADER_LAYOUT.pack(
            job_id=self.job_id,
            block_id=self.block_id,
            age_op=self.age_op,
            final=int(self.final),
            degraded=int(self.degraded),
            src_id=self.src_id,
            src_cnt=self.src_cnt,
            gen_id=self.gen_id,
            grad_cnt=self.grad_cnt,
        )

    @classmethod
    def unpack(cls, data: Sequence[int]) -> "TrioMLHeader":
        fields = TRIO_ML_HEADER_LAYOUT.unpack(data)
        return cls(
            job_id=fields["job_id"],
            block_id=fields["block_id"],
            src_id=fields["src_id"],
            grad_cnt=fields["grad_cnt"],
            gen_id=fields["gen_id"],
            age_op=fields["age_op"],
            final=bool(fields["final"]),
            degraded=bool(fields["degraded"]),
            src_cnt=fields["src_cnt"],
        )


def encode_trio_ml(header: TrioMLHeader, gradients: Sequence[int]) -> bytes:
    """Build the UDP payload: 12-byte header + little-endian int32 grads."""
    if len(gradients) != header.grad_cnt:
        raise ValueError(
            f"header says {header.grad_cnt} gradients, got {len(gradients)}"
        )
    if header.grad_cnt > MAX_GRADIENTS_PER_PACKET:
        raise ValueError(
            f"{header.grad_cnt} gradients exceeds the {MAX_GRADIENTS_PER_PACKET} "
            "per-packet maximum (Figure 7)"
        )
    # int64 -> uint32 cast truncates modulo 2^32, i.e. the & 0xFFFFFFFF.
    ticks = np.asarray(gradients, dtype=np.int64).astype("<u4")
    return header.pack() + ticks.tobytes()


def decode_trio_ml(payload: bytes) -> Tuple[TrioMLHeader, List[int]]:
    """Parse a Trio-ML UDP payload into (header, signed int32 gradients)."""
    if len(payload) < TrioMLHeader.SIZE:
        raise ValueError(f"payload too short for Trio-ML header: {len(payload)}")
    header = TrioMLHeader.unpack(payload[: TrioMLHeader.SIZE])
    body = payload[TrioMLHeader.SIZE: TrioMLHeader.SIZE + 4 * header.grad_cnt]
    if len(body) != 4 * header.grad_cnt:
        raise ValueError(
            f"payload truncated: expected {4 * header.grad_cnt} gradient "
            f"bytes, got {len(body)}"
        )
    gradients = np.frombuffer(body, dtype="<i4").tolist()
    return header, gradients
