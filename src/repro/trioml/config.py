"""Control-plane configuration for Trio-ML jobs (§4).

Job records are created at configuration time (not by the data plane),
multicast membership is set up for result delivery, and — for
hierarchical aggregation (Figure 11b) — first-level aggregator PFEs are
pointed at the top-level PFE.  All of this is control-plane work: "when
hierarchical aggregation is being set up, all configurations are done via
the control-plane, and no Microcode changes are needed" (§4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.addressing import IPv4Address, MACAddress
from repro.trio.pfe import PFE
from repro.trio.router import TrioRouter
from repro.trioml.aggregator import JobRuntime, TrioMLAggregator
from repro.trioml.records import JobRecord
from repro.trioml.straggler import StragglerDetector
from repro.trioml.worker import TrioMLWorker

__all__ = [
    "TrioMLJobConfig",
    "JobHandle",
    "setup_single_level_job",
    "setup_hierarchical_job",
    "setup_remote_first_level_job",
]


@dataclass
class TrioMLJobConfig:
    """User-facing knobs of one aggregation job (§6.1 defaults)."""

    job_id: int = 1
    grads_per_packet: int = 1024
    window: int = 4096
    timeout_s: float = 0.010
    detector_threads: int = 100
    #: Router address the workers send aggregation packets to.
    service_ip: IPv4Address = field(
        default_factory=lambda: IPv4Address("10.255.0.1")
    )
    #: Multicast group the Result packets are delivered to.
    group_ip: IPv4Address = field(
        default_factory=lambda: IPv4Address("239.1.1.1")
    )
    router_mac: MACAddress = field(
        default_factory=lambda: MACAddress(0xFEFEFEFEFEFE)
    )
    #: Loss recovery (§7, future work in the paper): the aggregator caches
    #: completed Results and replays them on retransmission; workers
    #: retransmit after ``retransmit_timeout_s``.
    loss_recovery: bool = False
    retransmit_timeout_s: Optional[float] = None

    @property
    def timeout_ms(self) -> int:
        return max(1, round(self.timeout_s * 1000))


@dataclass
class JobHandle:
    """Everything the experiment needs to drive a configured job."""

    config: TrioMLJobConfig
    aggregators: Dict[str, TrioMLAggregator]
    runtimes: Dict[str, JobRuntime]
    detectors: Dict[str, StragglerDetector] = field(default_factory=dict)

    @property
    def aggregator(self) -> TrioMLAggregator:
        """The (single or top-level) result-producing aggregator."""
        return next(iter(self.aggregators.values()))

    def start_detectors(self) -> None:
        for detector in self.detectors.values():
            detector.start()

    def stop_detectors(self) -> None:
        for detector in self.detectors.values():
            detector.stop()


def _source_mask(src_ids: Sequence[int]) -> int:
    mask = 0
    for src_id in src_ids:
        mask |= 1 << src_id
    return mask


def _get_aggregator(pfe: PFE) -> TrioMLAggregator:
    if isinstance(pfe.app, TrioMLAggregator):
        return pfe.app
    return pfe.install_app(TrioMLAggregator())


def setup_single_level_job(
    pfe: PFE,
    config: TrioMLJobConfig,
    workers: List[TrioMLWorker],
    worker_ports: Dict[str, str],
    with_detector: bool = False,
) -> JobHandle:
    """Configure single-level aggregation on one PFE.

    ``worker_ports`` maps worker name -> the PFE port it is attached to;
    result multicast membership is programmed on those ports.
    """
    aggregator = _get_aggregator(pfe)
    record = JobRecord(
        job_id=config.job_id,
        src_cnt=len(workers),
        src_mask=_source_mask([w.src_id for w in workers]),
        block_grad_max=config.grads_per_packet,
        block_exp_ms=config.timeout_ms,
        out_src_addr=int(config.service_ip),
        out_dst_addr=int(config.group_ip),
    )
    runtime = JobRuntime(
        record=record,
        role="single",
        result_src_ip=config.service_ip,
        result_dst_ip=config.group_ip,
        result_src_mac=config.router_mac,
        loss_recovery=config.loss_recovery,
    )
    aggregator.configure_job(runtime)
    for worker in workers:
        pfe.multicast.join(config.group_ip, worker_ports[worker.name])
    handle = JobHandle(
        config=config,
        aggregators={pfe.name: aggregator},
        runtimes={pfe.name: runtime},
    )
    if with_detector:
        handle.detectors[pfe.name] = StragglerDetector(
            aggregator,
            num_threads=config.detector_threads,
            timeout_s=config.timeout_s,
        )
    return handle


def setup_hierarchical_job(
    router: TrioRouter,
    config: TrioMLJobConfig,
    first_level: Dict[str, List[TrioMLWorker]],
    worker_ports: Dict[str, Tuple[str, str]],
    top_pfe: str,
    with_detector: bool = False,
) -> JobHandle:
    """Configure hierarchical aggregation across a chassis (Figure 11b).

    ``first_level`` maps first-level PFE name -> the workers attached to
    it; ``worker_ports`` maps worker name -> (pfe_name, port_name);
    ``top_pfe`` is the designated top-level aggregator PFE.  First-level
    PFEs feed the top-level PFE directly over the fabric; the top-level
    PFE sees them as individual sources (src_ids 100, 101, …) and
    multicasts the final Result to the job's group.
    """
    if top_pfe in first_level:
        raise ValueError("the top-level PFE cannot also be first-level")
    aggregators: Dict[str, TrioMLAggregator] = {}
    runtimes: Dict[str, JobRuntime] = {}
    detectors: Dict[str, StragglerDetector] = {}

    # Top level first, so it is ready before any first-level result.
    top_aggregator = _get_aggregator(router.pfe(top_pfe))
    level_src_ids = []
    for index, pfe_name in enumerate(sorted(first_level)):
        level_src_ids.append(100 + index)
    top_record = JobRecord(
        job_id=config.job_id,
        src_cnt=len(first_level),
        src_mask=_source_mask(level_src_ids),
        block_grad_max=config.grads_per_packet,
        block_exp_ms=config.timeout_ms,
        out_src_addr=int(config.service_ip),
        out_dst_addr=int(config.group_ip),
    )
    top_runtime = JobRuntime(
        record=top_record,
        role="top",
        result_src_ip=config.service_ip,
        result_dst_ip=config.group_ip,
        result_src_mac=config.router_mac,
        loss_recovery=config.loss_recovery,
    )
    top_aggregator.configure_job(top_runtime)
    aggregators[top_pfe] = top_aggregator
    runtimes[top_pfe] = top_runtime
    if with_detector:
        # The top level waits twice as long as first-level aggregators, so
        # a first-level mitigation (which completes within 2x its timeout)
        # reaches the top before the top's own age-out fires.
        detectors[top_pfe] = StragglerDetector(
            top_aggregator,
            num_threads=config.detector_threads,
            timeout_s=2 * config.timeout_s,
        )

    for index, pfe_name in enumerate(sorted(first_level)):
        workers = first_level[pfe_name]
        pfe = router.pfe(pfe_name)
        aggregator = _get_aggregator(pfe)
        record = JobRecord(
            job_id=config.job_id,
            src_cnt=len(workers),
            src_mask=_source_mask([w.src_id for w in workers]),
            block_grad_max=config.grads_per_packet,
            block_exp_ms=config.timeout_ms,
            out_src_addr=int(config.service_ip),
            out_dst_addr=int(config.service_ip),
        )
        runtime = JobRuntime(
            record=record,
            role="first_level",
            top_pfe=top_pfe,
            own_src_id=100 + index,
            result_src_ip=config.service_ip,
            result_dst_ip=config.service_ip,
            result_src_mac=config.router_mac,
            loss_recovery=config.loss_recovery,
        )
        aggregator.configure_job(runtime)
        aggregators[pfe_name] = aggregator
        runtimes[pfe_name] = runtime
        if with_detector:
            detectors[pfe_name] = StragglerDetector(
                aggregator,
                num_threads=config.detector_threads,
                timeout_s=config.timeout_s,
            )

    # Result multicast membership across the chassis.
    for worker_name, (pfe_name, port_name) in worker_ports.items():
        router.join_multicast(config.group_ip, pfe_name, port_name)

    return JobHandle(
        config=config,
        aggregators={top_pfe: aggregators[top_pfe],
                     **{k: v for k, v in aggregators.items() if k != top_pfe}},
        runtimes=runtimes,
        detectors=detectors,
    )


def setup_remote_first_level_job(
    pfe: PFE,
    config: TrioMLJobConfig,
    workers: List[TrioMLWorker],
    worker_ports: Dict[str, str],
    own_src_id: int,
    upstream_service_ip: IPv4Address,
    uplink_port: str,
    with_detector: bool = False,
) -> JobHandle:
    """Configure a *remote* first-level aggregator (§4's multi-device
    hierarchy): this device aggregates its local workers, then unicasts
    its partial Result to ``upstream_service_ip`` — the next-level
    aggregator on another device — relying on standard IP forwarding over
    ``uplink_port``.  The final Result multicast from the upstream device
    re-enters through the uplink and is forwarded to the local workers'
    group membership.
    """
    aggregator = _get_aggregator(pfe)
    record = JobRecord(
        job_id=config.job_id,
        src_cnt=len(workers),
        src_mask=_source_mask([w.src_id for w in workers]),
        block_grad_max=config.grads_per_packet,
        block_exp_ms=config.timeout_ms,
        out_src_addr=int(config.service_ip),
        out_dst_addr=int(upstream_service_ip),
    )
    runtime = JobRuntime(
        record=record,
        role="remote_first_level",
        own_src_id=own_src_id,
        result_src_ip=config.service_ip,
        result_dst_ip=IPv4Address(upstream_service_ip),
        result_src_mac=config.router_mac,
        loss_recovery=config.loss_recovery,
    )
    aggregator.configure_job(runtime)
    # Partial results ride ordinary unicast routing toward the upstream.
    pfe.add_route(IPv4Address(upstream_service_ip), uplink_port)
    # Final results arriving from upstream multicast to the local workers.
    for worker in workers:
        pfe.multicast.join(config.group_ip, worker_ports[worker.name])
    handle = JobHandle(
        config=config,
        aggregators={pfe.name: aggregator},
        runtimes={pfe.name: runtime},
    )
    if with_detector:
        handle.detectors[pfe.name] = StragglerDetector(
            aggregator,
            num_threads=config.detector_threads,
            timeout_s=config.timeout_s,
        )
    return handle
