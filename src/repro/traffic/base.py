"""Scenario interface for the datacenter traffic generator.

A :class:`TrafficScenario` is a *workload description*: given an
:class:`~repro.sim.Environment` and a flow budget it produces a
:class:`~repro.flowsim.flow.FlowSpec` list, drawing every random choice
from the environment's named stream ``traffic/<scenario-name>``.  The
scenario knows nothing about which simulation level will consume the
flows — the adapters in :mod:`repro.traffic.adapters` compile the same
scenario into the fluid level or into wire-format packet streams for
the NF-chain executor (the separation RouteNet-Gauss argues for,
PAPERS.md: workload generation decoupled from the simulation backend).

Concrete scenarios live in :mod:`repro.traffic.scenarios` and are
looked up by name through :mod:`repro.traffic.registry`, mirroring the
``repro.collectives`` / ``repro.nf`` registries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from random import Random
from typing import List, Tuple

from repro.flowsim.escalate import EscalationConfig
from repro.flowsim.flow import FlowSpec
from repro.flowsim.scenario import host_name
from repro.sim import Environment

__all__ = [
    "FabricShape",
    "TrafficScenario",
]


@dataclass(frozen=True)
class FabricShape:
    """The leaf/spine fabric a scenario's endpoints live on.

    Mirrors the fabric half of
    :class:`repro.flowsim.scenario.ScenarioConfig` (same defaults, same
    ``h<leaf>-<index>`` naming) so a scenario's flow list drops straight
    onto the fabric that module builds.
    """

    leaves: int = 4
    hosts_per_leaf: int = 16
    host_bandwidth_bps: float = 100e9
    uplink_bandwidth_bps: float = 800e9
    propagation_s: float = 1e-6

    def __post_init__(self) -> None:
        if self.leaves < 1 or self.hosts_per_leaf < 1:
            raise ValueError(
                f"fabric needs >= 1 leaf and host: {self.leaves}, "
                f"{self.hosts_per_leaf}"
            )

    @property
    def num_hosts(self) -> int:
        return self.leaves * self.hosts_per_leaf

    @property
    def aggregate_access_bps(self) -> float:
        return self.num_hosts * self.host_bandwidth_bps

    def host_names(self) -> List[str]:
        return [host_name(leaf, index)
                for leaf in range(self.leaves)
                for index in range(self.hosts_per_leaf)]

    def host_address(self, host_index: int) -> Tuple[int, int]:
        """(leaf, index-within-leaf) of a flat host index."""
        return divmod(host_index, self.hosts_per_leaf)


class TrafficScenario(abc.ABC):
    """One named workload family.

    Subclasses set ``name`` and ``description``, and implement
    :meth:`generate`.  Every random draw must come from
    :meth:`rng` — one named stream per scenario, so a scenario's flow
    list is a pure function of ``(scenario parameters, seed)`` and the
    same whether it is generated in the main process or a ``--parallel``
    worker.
    """

    name: str = ""
    description: str = ""

    def __init__(self, fabric: FabricShape = FabricShape()):
        self.fabric = fabric

    @property
    def stream_key(self) -> str:
        return f"traffic/{self.name}"

    def rng(self, env: Environment) -> Random:
        """The scenario's seed-tree stream in ``env``."""
        return env.rng_stream(self.stream_key)

    @abc.abstractmethod
    def generate(self, env: Environment,
                 num_flows: int) -> List[FlowSpec]:
        """Produce exactly ``num_flows`` flow specs, start-time ordered."""

    def escalation(self) -> EscalationConfig:
        """Escalation thresholds for fluid runs of this scenario.

        The default config already carries the microburst/DDoS classes;
        scenarios with stragglers or unusual burst geometry override.
        """
        return EscalationConfig()

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"
