"""Compile a traffic scenario into either simulation level.

:func:`run_fluid` drives a scenario end-to-end through the hybrid
fluid engine (:mod:`repro.flowsim`) on the scenario's own leaf/spine
fabric, with the escalation boundary active — including the
``"microburst"`` and ``"ddos"`` classes the traffic library adds.

:func:`packet_stream` compiles the *same* scenario into wire-format
packets parsed into :class:`~repro.nf.base.PacketView`\\ s for the
NF-chain executor: flows become deterministic per-flow packet trains,
and ``"ddos"`` flows are mapped onto a small spoofed source-IP pool on
``dst_port`` 443 so the firewall NF's per-source policers see the
flood the flow level only models as fan-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.flowsim.engine import FluidEngine
from repro.flowsim.escalate import EscalationPolicy, reset_reference_caches
from repro.flowsim.flow import (
    DEFAULT_MTU_PAYLOAD_BYTES,
    FlowRecord,
    FlowSpec,
)
from repro.flowsim.scenario import ScenarioConfig, build_leaf_spine
from repro.net import IPv4Address, MACAddress
from repro.net.packet import Packet
from repro.nf.base import PacketView
from repro.nf.exec import packet_view
from repro.sim import Environment
from repro.traffic.base import TrafficScenario
from repro.traffic.scenarios import DDoSScenario

__all__ = [
    "FluidRunResult",
    "packet_stream",
    "run_fluid",
]


@dataclass
class FluidRunResult:
    """Outcome of one fluid-level scenario run."""

    scenario: str
    records: List[FlowRecord]
    summary: Dict[str, float]
    escalations: Dict[str, int]
    sim_seconds: float
    simulated_payload_bytes: float
    solves: int


def run_fluid(scenario: TrafficScenario,
              num_flows: int) -> FluidRunResult:
    """Run ``num_flows`` of ``scenario`` through the fluid engine.

    The same shape as :func:`repro.flowsim.scenario.run_scenario`:
    fresh reference caches, an Environment built from the process
    default seed, the scenario's fabric, and the scenario's escalation
    thresholds — a pure function of ``(scenario, num_flows, seed)`` in
    any process layout.
    """
    reset_reference_caches()
    env = Environment()
    fabric = scenario.fabric
    topology = build_leaf_spine(env, ScenarioConfig(
        leaves=fabric.leaves,
        hosts_per_leaf=fabric.hosts_per_leaf,
        host_bandwidth_bps=fabric.host_bandwidth_bps,
        uplink_bandwidth_bps=fabric.uplink_bandwidth_bps,
        propagation_s=fabric.propagation_s,
    ))
    policy = EscalationPolicy(scenario.escalation())
    engine = FluidEngine(env, topology, policy=policy)
    for spec in scenario.generate(env, num_flows):
        env.call_at(spec.start_s, engine.start_flow, spec)
    env.run()
    return FluidRunResult(
        scenario=scenario.name,
        records=engine.records,
        summary=engine.summary(),
        escalations=engine.escalations,
        sim_seconds=env.now,
        simulated_payload_bytes=engine.completed_payload_bytes,
        solves=engine.solves,
    )


_SRC_MAC = MACAddress(0x02_00_00_00_00_01)
_DST_MAC = MACAddress(0x02_00_00_00_00_02)


def _fabric_ip(scenario: TrafficScenario, host: str,
               index_of: Dict[str, int]) -> IPv4Address:
    """The address :func:`build_leaf_spine` gives this fabric host."""
    leaf, index = scenario.fabric.host_address(index_of[host])
    return IPv4Address(f"10.{leaf}.0.{index + 1}")


def packet_stream(
    scenario: TrafficScenario,
    num_packets: int,
    num_flows: int = 0,
    max_packets_per_flow: int = 8,
) -> Tuple[PacketView, ...]:
    """The first ``num_packets`` wire packets of a scenario run.

    Each generated flow becomes a train of up to
    ``max_packets_per_flow`` MTU-paced packets starting at the flow's
    start time; trains from concurrent flows interleave in global time
    order, which is what exercises per-epoch NF state (policer budgets,
    heavy-hitter tables) the way real traffic does.  ``num_flows``
    defaults to ``num_packets`` — every flow contributes at least one
    packet, so the stream is always long enough.

    Deterministic end to end: the flow list comes from the scenario's
    seed-tree stream and the flow-to-packet expansion draws no
    randomness at all.
    """
    if num_packets < 1:
        raise ValueError(f"stream needs >= 1 packets: {num_packets}")
    if num_flows < 1:
        num_flows = num_packets
    env = Environment()
    flows = scenario.generate(env, num_flows)
    index_of = {name: i
                for i, name in enumerate(scenario.fabric.host_names())}
    spacing_s = (DEFAULT_MTU_PAYLOAD_BYTES * 8.0
                 / scenario.fabric.host_bandwidth_bps)
    spoofed = (scenario.spoofed_sources
               if isinstance(scenario, DDoSScenario) else 0)

    events: List[Tuple[float, int, int]] = []
    for seq, flow in enumerate(flows):
        train = min(
            max_packets_per_flow,
            max(1, math.ceil(flow.size_bytes / DEFAULT_MTU_PAYLOAD_BYTES)),
        )
        for k in range(train):
            events.append((flow.start_s + k * spacing_s, seq, k))
    events.sort()

    views: List[PacketView] = []
    attack_seq: Dict[int, int] = {}
    for index, (_, seq, _k) in enumerate(events[:num_packets]):
        flow = flows[seq]
        if flow.service == "ddos" and spoofed > 0:
            # One spoofed source IP per flood flow, cycling a small
            # pool: the per-source packet counts the firewall polices
            # concentrate on `spoofed` addresses however many flood
            # flows the scenario launched.
            spoof = attack_seq.setdefault(seq, len(attack_seq))
            packet = Packet.udp(
                src_mac=_SRC_MAC,
                dst_mac=_DST_MAC,
                src_ip=IPv4Address(
                    f"10.99.{(spoof % spoofed) // 200}."
                    f"{(spoof % spoofed) % 200 + 1}"
                ),
                dst_ip=_fabric_ip(scenario, flow.dst, index_of),
                src_port=3000 + spoof % 64,
                dst_port=443,
                payload=bytes(64),
            )
        else:
            packet = Packet.udp(
                src_mac=_SRC_MAC,
                dst_mac=_DST_MAC,
                src_ip=_fabric_ip(scenario, flow.src, index_of),
                dst_ip=_fabric_ip(scenario, flow.dst, index_of),
                src_port=1024 + flow.flow_id % 60_000,
                dst_port=2000 + flow.flow_id % 16,
                payload=bytes(64),
            )
        views.append(packet_view(index, packet))
    return tuple(views)
