"""Name-keyed registry of traffic scenarios.

Mirrors :mod:`repro.nf.registry` / :mod:`repro.collectives.registry`:
the registry is the single source of truth for which scenarios exist —
the ``harness traffic`` sweep enumerates it, adapters resolve names
here, and error messages report whatever is registered *right now*.
Lookups are case-insensitive; canonical keys are lowercase.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.traffic.base import TrafficScenario

__all__ = [
    "UnknownScenarioError",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "unregister_scenario",
]


class UnknownScenarioError(ValueError):
    """Raised when a scenario name is not in the registry."""


_REGISTRY: Dict[str, TrafficScenario] = {}


def register_scenario(scenario: TrafficScenario,
                      replace: bool = False) -> TrafficScenario:
    """Add ``scenario`` under ``scenario.name`` (lowercased).

    Registering a name twice is an error unless ``replace=True`` —
    silent shadowing would make a sweep's provenance ambiguous.
    Returns the scenario so calls can be used as expressions.
    """
    name = str(scenario.name).strip().lower()
    if not name:
        raise ValueError("scenario must have a non-empty name")
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"scenario {name!r} is already registered; pass replace=True "
            "to override it"
        )
    scenario.name = name
    _REGISTRY[name] = scenario
    return scenario


def unregister_scenario(name: str) -> TrafficScenario:
    """Remove and return a scenario (mainly for tests registering
    variants)."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY.pop(key)
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None


def get_scenario(name: str) -> TrafficScenario:
    """Resolve a scenario by name, case-insensitively."""
    key = str(name).strip().lower()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None


def available_scenarios() -> Tuple[str, ...]:
    """Canonical names of every registered scenario, sorted."""
    return tuple(sorted(_REGISTRY))
