"""The built-in scenario families.

Six workload shapes cover the load classes the paper's three Trio
applications face (firewall, telemetry, in-network aggregation), after
the taxonomy of the datacenter traffic-generation literature
(Parsonson et al., PAPERS.md):

``websearch``
    Query/response traffic from the web-search flow-size CDF — mice
    plus a multi-MB elephant tail — with Poisson arrivals and uniform
    endpoints.
``cache``
    Key-value traffic: tiny objects from the cache CDF, on/off
    burst-modulated arrivals, Zipf-skewed destination popularity (hot
    shards).
``incast``
    Bulk lognormal background plus synchronised fan-in bursts
    (``"incast"`` service — the classic escalation trigger).
``microburst``
    Bulk background plus microburst *trains*: repeated back-to-back
    fan-in waves of tiny flows (``"microburst"`` service, the new
    escalation class).
``ddos``
    Benign background plus spoofed-source flood volleys converging on a
    small victim set (``"ddos"`` service); the packet adapter maps the
    flood onto few spoofed source IPs so the firewall NF's per-source
    policers trip.
``heavy-hitter``
    Pareto (heavy-tailed) sizes with Zipf-skewed endpoint popularity —
    the few-flows-carry-most-bytes skew the telemetry NF's heavy-hitter
    tables must survive.

Every family keeps its offered load comfortably below the fabric's
bottlenecks so the fluid level's active-flow set stays bounded at
10^5–10^6 flows.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.flowsim.flow import FlowSpec
from repro.sim import Environment
from repro.traffic.base import FabricShape, TrafficScenario
from repro.traffic.registry import register_scenario
from repro.traffic.samplers import (
    ArrivalProcess,
    CACHE_SIZE_CDF,
    CDFTableSizes,
    ExponentialSizes,
    LognormalSizes,
    OnOffArrivals,
    ParetoSizes,
    PoissonArrivals,
    SizeSampler,
    WEBSEARCH_SIZE_CDF,
    ZipfPopularity,
    fan_in_burst,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "DDoSScenario",
    "FanInScenario",
    "MixedScenario",
    "register_builtin_scenarios",
]


class MixedScenario(TrafficScenario):
    """Independent flows: pluggable size law, arrivals, endpoint skew.

    Arrival rate is sized so offered load is ``load`` times the
    aggregate host access bandwidth (the same convention as
    :class:`repro.flowsim.scenario.ScenarioConfig`).  With
    ``burst_arrivals`` the Poisson process is replaced by an on/off
    modulated one at the same long-run rate; with ``dst_skew`` /
    ``src_skew`` endpoints are drawn Zipf(popularity rank = host
    index) instead of uniformly.
    """

    def __init__(
        self,
        name: str,
        description: str,
        sizes: SizeSampler,
        mean_size_bytes: float,
        load: float = 0.5,
        dst_skew: float = 0.0,
        src_skew: float = 0.0,
        service: str = "bulk",
        burst_arrivals: Optional[Tuple[int, float]] = None,
        fabric: FabricShape = FabricShape(),
    ):
        super().__init__(fabric)
        if not 0.0 < load < 1.0:
            raise ValueError(f"load must be in (0, 1): {load}")
        self.name = name
        self.description = description
        self.sizes = sizes
        self.mean_size_bytes = mean_size_bytes
        self.load = load
        self.dst_skew = dst_skew
        self.src_skew = src_skew
        self.service = service
        #: (flows per on-burst, duty cycle) — None means plain Poisson.
        self.burst_arrivals = burst_arrivals

    def arrival_rate_per_s(self) -> float:
        return (self.fabric.aggregate_access_bps * self.load
                / (self.mean_size_bytes * 8.0))

    def _arrivals(self) -> ArrivalProcess:
        rate = self.arrival_rate_per_s()
        if self.burst_arrivals is None:
            return PoissonArrivals(rate)
        flows_per_burst, duty = self.burst_arrivals
        on_rate = rate / duty
        mean_on_s = flows_per_burst / on_rate
        mean_off_s = mean_on_s * (1.0 - duty) / duty
        return OnOffArrivals(on_rate, mean_on_s, mean_off_s)

    def generate(self, env: Environment,
                 num_flows: int) -> List[FlowSpec]:
        rng = self.rng(env)
        fabric = self.fabric
        hosts = fabric.host_names()
        n = fabric.num_hosts
        arrivals = self._arrivals()
        dst_pop = (ZipfPopularity(n, self.dst_skew)
                   if self.dst_skew > 0 else None)
        src_pop = (ZipfPopularity(n, self.src_skew)
                   if self.src_skew > 0 else None)
        flows: List[FlowSpec] = []
        now = 0.0
        for flow_id in range(num_flows):
            now = arrivals.next_after(rng, now)
            if src_pop is not None:
                src = src_pop.sample(rng)
            else:
                src = rng.randrange(n)
            if dst_pop is not None:
                dst = dst_pop.sample(rng)
                if dst == src:
                    dst = (dst + 1) % n
            else:
                dst = rng.randrange(n - 1)
                if dst >= src:
                    dst += 1
            flows.append(FlowSpec(
                flow_id=flow_id,
                src=hosts[src],
                dst=hosts[dst],
                size_bytes=self.sizes.sample(rng),
                start_s=now,
                service=self.service,
            ))
        return flows


class FanInScenario(TrafficScenario):
    """Bulk background plus synchronised fan-in burst trains.

    Each burst picks one victim and ``burst_degree`` distinct senders
    (via :func:`~repro.traffic.samplers.fan_in_burst`), then emits
    ``burst_rounds`` back-to-back waves spaced ``round_spacing_s``
    apart — one round is a classic incast, several rounds of tiny
    flows are a microburst train.
    """

    def __init__(
        self,
        name: str,
        description: str,
        background: SizeSampler,
        mean_size_bytes: float,
        load: float = 0.5,
        burst_fraction: float = 0.06,
        burst_degree: int = 12,
        burst_flow_bytes: float = 40_000.0,
        burst_rounds: int = 1,
        round_spacing_s: float = 2e-6,
        burst_service: str = "incast",
        fabric: FabricShape = FabricShape(),
    ):
        super().__init__(fabric)
        if not 0.0 < load < 1.0:
            raise ValueError(f"load must be in (0, 1): {load}")
        if burst_degree < 1 or burst_rounds < 1:
            raise ValueError(
                f"burst geometry must be >= 1: {burst_degree}, "
                f"{burst_rounds}"
            )
        self.name = name
        self.description = description
        self.background = background
        self.mean_size_bytes = mean_size_bytes
        self.load = load
        self.burst_fraction = burst_fraction
        self.burst_degree = burst_degree
        self.burst_flow_bytes = burst_flow_bytes
        self.burst_rounds = burst_rounds
        self.round_spacing_s = round_spacing_s
        self.burst_service = burst_service

    def generate(self, env: Environment,
                 num_flows: int) -> List[FlowSpec]:
        rng = self.rng(env)
        fabric = self.fabric
        hosts = fabric.host_names()
        n = fabric.num_hosts
        rate = (fabric.aggregate_access_bps * self.load
                / (self.mean_size_bytes * 8.0))
        burst_budget = int(num_flows * self.burst_fraction)
        flows: List[FlowSpec] = []
        flow_id = 0
        now = 0.0
        while len(flows) < num_flows:
            now += rng.expovariate(rate)
            if burst_budget > 0 and rng.random() < self.burst_fraction:
                victim, senders = fan_in_burst(
                    rng, n, self.burst_degree)
                for wave in range(self.burst_rounds):
                    when = now + wave * self.round_spacing_s
                    for sender in senders:
                        flows.append(FlowSpec(
                            flow_id=flow_id,
                            src=hosts[sender],
                            dst=hosts[victim],
                            size_bytes=self.burst_flow_bytes,
                            start_s=when,
                            service=self.burst_service,
                        ))
                        flow_id += 1
                burst_budget -= len(senders) * self.burst_rounds
                continue
            src = rng.randrange(n)
            dst = rng.randrange(n - 1)
            if dst >= src:
                dst += 1
            flows.append(FlowSpec(
                flow_id=flow_id,
                src=hosts[src],
                dst=hosts[dst],
                size_bytes=self.background.sample(rng),
                start_s=now,
                service="bulk",
            ))
            flow_id += 1
        return flows[:num_flows]


class DDoSScenario(TrafficScenario):
    """Benign background plus spoofed-source flood volleys.

    A volley is ``flood_degree`` small ``"ddos"`` flows launched at the
    same instant from distinct compromised hosts, all converging on one
    of ``victims`` fixed victim hosts.  At the fluid level the fan-in
    drives the ``"ddos"`` escalation class; at the packet level the
    adapter maps flood flows onto ``spoofed_sources`` source IPs so the
    firewall NF's per-source per-epoch policers trip and blocklisting
    engages.
    """

    def __init__(
        self,
        name: str,
        description: str,
        background: SizeSampler,
        mean_size_bytes: float,
        load: float = 0.3,
        attack_fraction: float = 0.35,
        flood_degree: int = 20,
        flood_flow_bytes: float = 6_000.0,
        victims: int = 2,
        spoofed_sources: int = 4,
        fabric: FabricShape = FabricShape(),
    ):
        super().__init__(fabric)
        if not 0.0 < load < 1.0:
            raise ValueError(f"load must be in (0, 1): {load}")
        if victims < 1 or victims >= fabric.num_hosts:
            raise ValueError(f"victim pool out of range: {victims}")
        if spoofed_sources < 1:
            raise ValueError(
                f"spoofed pool must be >= 1: {spoofed_sources}")
        self.name = name
        self.description = description
        self.background = background
        self.mean_size_bytes = mean_size_bytes
        self.load = load
        self.attack_fraction = attack_fraction
        self.flood_degree = flood_degree
        self.flood_flow_bytes = flood_flow_bytes
        self.victims = victims
        self.spoofed_sources = spoofed_sources

    def victim_hosts(self) -> List[str]:
        """The fixed victim pool: the last ``victims`` fabric hosts."""
        return self.fabric.host_names()[-self.victims:]

    def generate(self, env: Environment,
                 num_flows: int) -> List[FlowSpec]:
        rng = self.rng(env)
        fabric = self.fabric
        hosts = fabric.host_names()
        n = fabric.num_hosts
        rate = (fabric.aggregate_access_bps * self.load
                / (self.mean_size_bytes * 8.0))
        flood_budget = int(num_flows * self.attack_fraction)
        flows: List[FlowSpec] = []
        flow_id = 0
        now = 0.0
        while len(flows) < num_flows:
            now += rng.expovariate(rate)
            if flood_budget > 0 and rng.random() < self.attack_fraction:
                victim = n - 1 - rng.randrange(self.victims)
                senders = rng.sample(
                    [h for h in range(n) if h != victim],
                    min(self.flood_degree, n - 1),
                )
                for sender in senders:
                    flows.append(FlowSpec(
                        flow_id=flow_id,
                        src=hosts[sender],
                        dst=hosts[victim],
                        size_bytes=self.flood_flow_bytes,
                        start_s=now,
                        service="ddos",
                    ))
                    flow_id += 1
                flood_budget -= len(senders)
                continue
            src = rng.randrange(n)
            dst = rng.randrange(n - 1)
            if dst >= src:
                dst += 1
            flows.append(FlowSpec(
                flow_id=flow_id,
                src=hosts[src],
                dst=hosts[dst],
                size_bytes=self.background.sample(rng),
                start_s=now,
                service="bulk",
            ))
            flow_id += 1
        return flows[:num_flows]


def _builtin_scenarios() -> Tuple[TrafficScenario, ...]:
    """Construct one instance of each built-in family."""
    websearch_sizes = CDFTableSizes(WEBSEARCH_SIZE_CDF)
    cache_sizes = CDFTableSizes(CACHE_SIZE_CDF)
    return (
        MixedScenario(
            "websearch",
            "web-search flow-size CDF, Poisson arrivals, uniform "
            "endpoints",
            sizes=websearch_sizes,
            mean_size_bytes=websearch_sizes.mean_bytes,
            load=0.5,
        ),
        MixedScenario(
            "cache",
            "cache-follower sizes, on/off burst-modulated arrivals, "
            "Zipf-hot destination shards",
            sizes=cache_sizes,
            mean_size_bytes=cache_sizes.mean_bytes,
            load=0.08,
            dst_skew=0.9,
            burst_arrivals=(64, 0.25),
        ),
        FanInScenario(
            "incast",
            "lognormal bulk background plus synchronised incast "
            "fan-in bursts",
            background=LognormalSizes(mean_bytes=2e6, sigma=1.0),
            mean_size_bytes=2e6,
            load=0.5,
            burst_fraction=0.06,
            burst_degree=12,
            burst_flow_bytes=40_000.0,
            burst_service="incast",
        ),
        FanInScenario(
            "microburst",
            "bulk background plus microburst trains: repeated fan-in "
            "waves of tiny flows",
            background=ExponentialSizes(mean_bytes=2e6),
            mean_size_bytes=2e6,
            load=0.3,
            burst_fraction=0.12,
            burst_degree=8,
            burst_flow_bytes=8_000.0,
            burst_rounds=4,
            round_spacing_s=2e-6,
            burst_service="microburst",
        ),
        DDoSScenario(
            "ddos",
            "benign background plus spoofed-source flood volleys on a "
            "small victim set",
            background=ExponentialSizes(mean_bytes=2e6),
            mean_size_bytes=2e6,
            load=0.3,
        ),
        MixedScenario(
            "heavy-hitter",
            "Pareto heavy-tailed sizes with Zipf-skewed endpoint "
            "popularity",
            sizes=ParetoSizes(alpha=1.3),
            mean_size_bytes=ParetoSizes(alpha=1.3).mean_bytes,
            load=0.15,
            dst_skew=1.1,
            src_skew=1.1,
        ),
    )


BUILTIN_SCENARIOS: Tuple[TrafficScenario, ...] = _builtin_scenarios()


def register_builtin_scenarios(replace: bool = True) -> None:
    """(Re-)register the built-in families; idempotent on re-import."""
    for scenario in BUILTIN_SCENARIOS:
        register_scenario(scenario, replace=replace)


register_builtin_scenarios()
