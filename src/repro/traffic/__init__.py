"""Datacenter-scale traffic generation and scenario registry.

ROADMAP item 1: realistic datacenter load at 10^5–10^6-flow scale —
empirical flow-size and interarrival distributions, Zipf popularity
skew, on/off bursts, incast, microburst trains, and DDoS mixes —
grounded in "Traffic Generation for Benchmarking Data Centre Networks"
(Parsonson et al., PAPERS.md).  Everything is seeded through the
``Environment.rng_stream("traffic/...")`` tree, so serial and
``--parallel`` runs are bit-identical.

Layout mirrors the other pluggable subsystems:

* :mod:`~repro.traffic.samplers` — the distribution toolbox;
* :mod:`~repro.traffic.base` — the :class:`TrafficScenario` interface
  and the :class:`FabricShape` its endpoints live on;
* :mod:`~repro.traffic.registry` — name-keyed scenario lookup
  (``register_scenario`` / ``get_scenario`` / ``available_scenarios``);
* :mod:`~repro.traffic.scenarios` — the six built-in families
  (registered on import);
* :mod:`~repro.traffic.adapters` — compilation into the fluid level
  (:func:`run_fluid`) or NF-chain packet streams
  (:func:`packet_stream`).
"""

from repro.traffic.adapters import (
    FluidRunResult,
    packet_stream,
    run_fluid,
)
from repro.traffic.base import FabricShape, TrafficScenario
from repro.traffic.registry import (
    UnknownScenarioError,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
)
from repro.traffic.samplers import (
    CACHE_SIZE_CDF,
    CDFTableSizes,
    ExponentialSizes,
    LognormalSizes,
    OnOffArrivals,
    ParetoSizes,
    PoissonArrivals,
    WEBSEARCH_SIZE_CDF,
    ZipfPopularity,
    fan_in_burst,
)
from repro.traffic.scenarios import (
    BUILTIN_SCENARIOS,
    DDoSScenario,
    FanInScenario,
    MixedScenario,
    register_builtin_scenarios,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "CACHE_SIZE_CDF",
    "CDFTableSizes",
    "DDoSScenario",
    "ExponentialSizes",
    "FabricShape",
    "FanInScenario",
    "FluidRunResult",
    "LognormalSizes",
    "MixedScenario",
    "OnOffArrivals",
    "ParetoSizes",
    "PoissonArrivals",
    "TrafficScenario",
    "UnknownScenarioError",
    "WEBSEARCH_SIZE_CDF",
    "ZipfPopularity",
    "available_scenarios",
    "fan_in_burst",
    "get_scenario",
    "packet_stream",
    "register_builtin_scenarios",
    "register_scenario",
    "run_fluid",
    "unregister_scenario",
]
