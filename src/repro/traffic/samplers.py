"""Seeded samplers for empirical datacenter traffic distributions.

Every sampler draws exclusively from a :class:`random.Random` stream the
caller obtained from ``Environment.rng_stream("traffic/...")`` — no
module-level RNG state, no wall clock — so a scenario's flow list is a
pure function of ``(scenario, seed)`` and serial runs are bit-identical
to ``--parallel`` fan-outs.

The distribution families follow "Traffic Generation for Benchmarking
Data Centre Networks" (Parsonson et al., PAPERS.md): empirical
flow-size CDF tables (web-search- and cache-shaped), lognormal and
Pareto parametric sizes, Poisson and on/off-modulated interarrivals,
and Zipf flow-popularity skew.  :func:`fan_in_burst` is the shared
synchronised-burst endpoint draw that :mod:`repro.flowsim.scenario`'s
incast and aggregation arms are re-expressed through.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from random import Random
from typing import List, Protocol, Sequence, Tuple

__all__ = [
    "ArrivalProcess",
    "CACHE_SIZE_CDF",
    "CDFTableSizes",
    "ExponentialSizes",
    "LognormalSizes",
    "OnOffArrivals",
    "ParetoSizes",
    "PoissonArrivals",
    "SizeSampler",
    "WEBSEARCH_SIZE_CDF",
    "ZipfPopularity",
    "fan_in_burst",
]


class SizeSampler(Protocol):
    """Anything that draws one flow size (payload bytes) per call."""

    def sample(self, rng: Random) -> float: ...


class ArrivalProcess(Protocol):
    """Anything that advances a flow-arrival clock."""

    def next_after(self, rng: Random, now_s: float) -> float: ...


# ---------------------------------------------------------------------------
# Flow sizes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExponentialSizes:
    """Exponential flow sizes with a frame-sized floor.

    Draw-for-draw identical to the original hand-rolled expression in
    :mod:`repro.flowsim.scenario` (``max(min, expovariate(1/mean))``),
    which is what keeps the ``hybrid`` sweep bit-identical after the
    dedup refactor.
    """

    mean_bytes: float
    min_bytes: float = 1458.0

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0:
            raise ValueError(f"mean must be positive: {self.mean_bytes}")

    def sample(self, rng: Random) -> float:
        return max(self.min_bytes,
                   rng.expovariate(1.0 / self.mean_bytes))


@dataclass(frozen=True)
class LognormalSizes:
    """Lognormal flow sizes parameterised by their *mean*, not ``mu``.

    ``mu`` is derived as ``ln(mean) - sigma^2/2`` so the distribution's
    first moment equals ``mean_bytes`` exactly — the property the
    sampler-statistics tests pin at n = 10^5.
    """

    mean_bytes: float
    sigma: float = 1.0
    min_bytes: float = 64.0

    def __post_init__(self) -> None:
        if self.mean_bytes <= 0:
            raise ValueError(f"mean must be positive: {self.mean_bytes}")
        if self.sigma <= 0:
            raise ValueError(f"sigma must be positive: {self.sigma}")

    @property
    def mu(self) -> float:
        return math.log(self.mean_bytes) - 0.5 * self.sigma * self.sigma

    def sample(self, rng: Random) -> float:
        return max(self.min_bytes, rng.lognormvariate(self.mu, self.sigma))


@dataclass(frozen=True)
class ParetoSizes:
    """Pareto (heavy-tailed) flow sizes: ``min_bytes * paretovariate``.

    For ``alpha > 1`` the mean is ``alpha * min_bytes / (alpha - 1)``;
    lower ``alpha`` means a heavier elephant tail.
    """

    alpha: float
    min_bytes: float = 1458.0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive: {self.alpha}")

    @property
    def mean_bytes(self) -> float:
        if self.alpha <= 1.0:
            return float("inf")
        return self.alpha * self.min_bytes / (self.alpha - 1.0)

    def sample(self, rng: Random) -> float:
        return self.min_bytes * rng.paretovariate(self.alpha)


class CDFTableSizes:
    """Inverse-transform sampling from an empirical flow-size CDF table.

    ``points`` is a sequence of ``(size_bytes, cumulative_probability)``
    pairs, non-decreasing in both coordinates, ending at probability
    1.0.  Sampling draws ``u ~ U(0, 1)`` and interpolates the size
    log-linearly between the bracketing table rows — the standard way
    the DCTCP-style workload tables are replayed by datacenter traffic
    generators.
    """

    def __init__(self, points: Sequence[Tuple[float, float]]):
        if len(points) < 2:
            raise ValueError("CDF table needs at least two points")
        prev_size, prev_p = 0.0, -1.0
        for size, p in points:
            if size <= prev_size and prev_p >= 0.0:
                raise ValueError(f"CDF sizes must increase: {size}")
            if p <= prev_p:
                raise ValueError(f"CDF probabilities must increase: {p}")
            prev_size, prev_p = size, p
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError(
                f"CDF must end at probability 1.0: {points[-1][1]}"
            )
        self._sizes: List[float] = [float(size) for size, _ in points]
        self._probs: List[float] = [float(p) for _, p in points]

    @property
    def mean_bytes(self) -> float:
        """Mean of the piecewise (log-linear) distribution, approximated
        by the geometric midpoint of each probability segment."""
        total = self._sizes[0] * self._probs[0]
        for i in range(1, len(self._sizes)):
            mass = self._probs[i] - self._probs[i - 1]
            mid = math.sqrt(self._sizes[i - 1] * self._sizes[i])
            total += mass * mid
        return total

    def quantile(self, u: float) -> float:
        """Size at cumulative probability ``u`` (log-linear)."""
        if u <= self._probs[0]:
            return self._sizes[0]
        if u >= 1.0:
            return self._sizes[-1]
        hi = bisect_left(self._probs, u)
        lo = hi - 1
        span = self._probs[hi] - self._probs[lo]
        frac = 0.0 if span <= 0.0 else (u - self._probs[lo]) / span
        log_lo = math.log(self._sizes[lo])
        log_hi = math.log(self._sizes[hi])
        return math.exp(log_lo + frac * (log_hi - log_lo))

    def sample(self, rng: Random) -> float:
        return self.quantile(rng.random())


#: Web-search-shaped flow-size CDF (mice-dominated with a multi-MB
#: elephant tail), after the query/response workload tables used by the
#: datacenter traffic-generation literature (Parsonson et al.,
#: PAPERS.md).  Sizes in payload bytes.
WEBSEARCH_SIZE_CDF: Tuple[Tuple[float, float], ...] = (
    (1_458.0, 0.15),
    (10_000.0, 0.40),
    (30_000.0, 0.60),
    (100_000.0, 0.75),
    (300_000.0, 0.85),
    (1_000_000.0, 0.93),
    (5_000_000.0, 0.98),
    (30_000_000.0, 1.00),
)

#: Cache-follower-shaped CDF: overwhelmingly tiny objects with a short
#: tail — the key-value / cache traffic class of the same literature.
CACHE_SIZE_CDF: Tuple[Tuple[float, float], ...] = (
    (64.0, 0.30),
    (256.0, 0.60),
    (1_458.0, 0.85),
    (10_000.0, 0.95),
    (100_000.0, 0.99),
    (1_000_000.0, 1.00),
)


# ---------------------------------------------------------------------------
# Interarrivals
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PoissonArrivals:
    """Memoryless interarrivals at ``rate_per_s`` flow starts/second."""

    rate_per_s: float

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive: {self.rate_per_s}")

    def next_after(self, rng: Random, now_s: float) -> float:
        return now_s + rng.expovariate(self.rate_per_s)


class OnOffArrivals:
    """On/off burst-modulated arrivals.

    Alternates exponentially distributed *on* and *off* periods; flow
    starts arrive as a Poisson process at ``on_rate_per_s`` during on
    periods and not at all during off periods.  The long-run average
    rate is ``on_rate * mean_on / (mean_on + mean_off)``.  Phase
    boundaries are drawn from the same stream as the arrivals, in a
    fixed order, so the whole arrival pattern replays from the seed.
    """

    def __init__(self, on_rate_per_s: float, mean_on_s: float,
                 mean_off_s: float):
        if on_rate_per_s <= 0:
            raise ValueError(f"on-rate must be positive: {on_rate_per_s}")
        if mean_on_s <= 0 or mean_off_s < 0:
            raise ValueError(
                f"invalid on/off periods: {mean_on_s}, {mean_off_s}"
            )
        self.on_rate_per_s = on_rate_per_s
        self.mean_on_s = mean_on_s
        self.mean_off_s = mean_off_s
        self._phase_end_s = -1.0  # first next_after() opens an on period

    @property
    def mean_rate_per_s(self) -> float:
        duty = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return self.on_rate_per_s * duty

    def next_after(self, rng: Random, now_s: float) -> float:
        """Next arrival instant strictly after ``now_s``."""
        t = now_s
        if self._phase_end_s < 0.0:
            self._phase_end_s = t + rng.expovariate(1.0 / self.mean_on_s)
        while True:
            t += rng.expovariate(self.on_rate_per_s)
            if t <= self._phase_end_s:
                return t
            # The candidate fell past the end of the on period: skip the
            # off period and retry from the start of the next burst.
            t = self._phase_end_s
            if self.mean_off_s > 0.0:
                t += rng.expovariate(1.0 / self.mean_off_s)
            self._phase_end_s = t + rng.expovariate(1.0 / self.mean_on_s)


# ---------------------------------------------------------------------------
# Popularity skew
# ---------------------------------------------------------------------------


class ZipfPopularity:
    """Zipf-skewed index sampling: rank ``k`` has weight ``k^-s``.

    Used for flow/endpoint popularity — a handful of heavy hitters plus
    a long tail, the skew every per-flow state structure (telemetry
    tables, firewall policers, cache shards) must survive.  Sampling is
    inverse-transform over the precomputed cumulative weights, one
    ``rng.random()`` draw per sample.
    """

    def __init__(self, n: int, exponent: float = 1.0):
        if n < 1:
            raise ValueError(f"population must be >= 1: {n}")
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0: {exponent}")
        self.n = n
        self.exponent = exponent
        cumulative: List[float] = []
        total = 0.0
        for rank in range(1, n + 1):
            total += rank ** -exponent
            cumulative.append(total)
        self._cumulative = [c / total for c in cumulative]

    def weight(self, rank: int) -> float:
        """Probability mass of 1-based ``rank``."""
        if not 1 <= rank <= self.n:
            raise ValueError(f"rank out of range: {rank}")
        prev = self._cumulative[rank - 2] if rank >= 2 else 0.0
        return self._cumulative[rank - 1] - prev

    def sample(self, rng: Random) -> int:
        """A 0-based index, rank 0 the most popular."""
        return bisect_left(self._cumulative, rng.random())


# ---------------------------------------------------------------------------
# Synchronised bursts
# ---------------------------------------------------------------------------


def fan_in_burst(rng: Random, num_hosts: int,
                 degree: int) -> Tuple[int, List[int]]:
    """Endpoint draw for one synchronised fan-in burst.

    Picks a target host uniformly, then ``min(degree, num_hosts - 1)``
    distinct senders from the rest.  This is *the* draw pattern of
    :mod:`repro.flowsim.scenario`'s incast and aggregation arms —
    moved here verbatim (same RNG call sequence) so both that module
    and the traffic scenarios share one implementation and the hybrid
    sweep output stays bit-identical.
    """
    if num_hosts < 2:
        raise ValueError(f"fan-in needs >= 2 hosts: {num_hosts}")
    target = rng.randrange(num_hosts)
    senders = rng.sample(
        [h for h in range(num_hosts) if h != target],
        min(degree, num_hosts - 1),
    )
    return target, senders
