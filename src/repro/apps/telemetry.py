"""In-network telemetry (§7).

The implementation lives in :mod:`repro.nf.telemetry` — the NF layer
owns both the Trio application and its backend-independent sibling
(:class:`repro.nf.telemetry.TelemetryNF`), so the export/retire sweep
rule is written once.  This module remains the stable import path for
the Trio application.
"""

from __future__ import annotations

from repro.net.headers import FlowKey
from repro.nf.telemetry import (
    FlowStats,
    TelemetryMonitor,
    TelemetryReport,
    sweep_decision,
)

__all__ = [
    "FlowKey",
    "FlowStats",
    "TelemetryMonitor",
    "TelemetryReport",
    "sweep_decision",
]
