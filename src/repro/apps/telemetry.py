"""In-network telemetry (§7).

Current devices sample one packet in tens of thousands, blindly, on a
time interval; §7 argues Trio can do better: keep per-flow state in the
large Shared Memory System, update it at line rate with the RMW engines,
and use timer threads for periodic monitoring and anomaly analysis.

:class:`TelemetryMonitor` implements that design:

* the data path looks each flow up in the hash block (setting its REF
  flag) and bumps its 16-byte Packet/Byte Counter — one RMW, no sampling;
* N timer threads sweep 1/N of the table each period, export flows whose
  rate crossed the heavy-hitter threshold, and retire flows whose REF
  flag was never re-set (idle for a full interval), returning their
  counter memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.net.headers import HeaderError
from repro.obs import bus as _obs
from repro.trio.counters import PacketByteCounter
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext

__all__ = ["FlowStats", "TelemetryMonitor", "TelemetryReport"]

FlowKey = Tuple[int, int, int, int]


@dataclass
class FlowStats:
    """Per-flow telemetry state: the shared-memory counter plus metadata."""

    counter: PacketByteCounter
    first_seen: float
    #: (packets, bytes) at the previous sweep, for rate computation.
    last_packets: int = 0
    last_bytes: int = 0


@dataclass
class TelemetryReport:
    """One exported heavy-hitter observation."""

    time: float
    flow: FlowKey
    packets: int
    bytes: int
    packets_per_s: float


class TelemetryMonitor(TrioApplication):
    """Line-rate per-flow accounting with timer-thread exports."""

    name = "telemetry"

    def __init__(
        self,
        heavy_hitter_pps: float = 1e6,
        scan_threads: int = 8,
        scan_period_s: float = 1e-3,
        export: Optional[Callable[[TelemetryReport], None]] = None,
        max_flows: int = 100_000,
    ):
        """``heavy_hitter_pps`` is the per-flow packet-rate threshold for
        export; ``export`` receives each report (defaults to collecting
        into :attr:`reports`)."""
        if scan_threads < 1:
            raise ValueError(f"need at least one scan thread: {scan_threads}")
        if scan_period_s <= 0:
            raise ValueError(f"scan period must be positive: {scan_period_s}")
        self.heavy_hitter_pps = heavy_hitter_pps
        self.scan_threads = scan_threads
        self.scan_period_s = scan_period_s
        self.max_flows = max_flows
        self.reports: List[TelemetryReport] = []
        self._export = export or self.reports.append
        self.flows_tracked = 0
        self.flows_retired = 0
        self.flows_dropped_capacity = 0
        self.pfe: Optional[PFE] = None

    def on_install(self, pfe: PFE) -> None:
        self.pfe = pfe
        if _obs.enabled():
            _obs.register_collector(self._obs_collect)
        pfe.timers.launch_periodic(
            name="telemetry-sweep",
            num_threads=self.scan_threads,
            period_s=self.scan_period_s,
            callback=self._sweep,
        )

    def _obs_collect(self, registry) -> None:
        """Export the monitor's counters (runs once at finalize)."""
        flows = registry.counter(
            "apps.telemetry.flows", "flow-table transitions", ("event",))
        flows.inc(self.flows_tracked, event="tracked")
        flows.inc(self.flows_retired, event="retired")
        flows.inc(self.flows_dropped_capacity, event="dropped_capacity")
        registry.gauge(
            "apps.telemetry.reports", "heavy-hitter reports exported"
        ).set(len(self.reports))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def handle_packet(self, tctx: ThreadContext, pctx: PacketContext):
        yield from tctx.execute(8)  # parse headers
        try:
            __, ip, udp, __ = pctx.packet.parse_udp()
        except HeaderError:
            pctx.forward()
            return
        flow: FlowKey = (int(ip.src), int(ip.dst), udp.src_port,
                         udp.dst_port)
        record = yield from tctx.hash_lookup(flow)
        if record is None:
            if len(self.pfe.hash_table) >= self.max_flows:
                # Table full: forward uncounted rather than stall traffic.
                self.flows_dropped_capacity += 1
                pctx.forward()
                return
            stats = FlowStats(
                counter=PacketByteCounter(self.pfe.memory),
                first_seen=self.pfe.env.now,
            )
            record, created = yield from tctx.hash_insert_if_absent(
                flow, stats
            )
            if created:
                self.flows_tracked += 1
        yield from record.value.counter.increment(pctx.length)
        pctx.forward()

    # ------------------------------------------------------------------
    # Timer threads (§7: "suitable for periodic monitoring")
    # ------------------------------------------------------------------

    def _sweep(self, tctx: ThreadContext, thread_index: int):
        table = self.pfe.hash_table
        records = yield from table.scan_segment(
            thread_index % self.scan_threads, self.scan_threads
        )
        now = self.pfe.env.now
        for record in records:
            yield from tctx.execute(3)
            stats = record.value
            if not isinstance(stats, FlowStats):
                continue
            packets, nbytes = stats.counter.read()
            delta_packets = packets - stats.last_packets
            rate = delta_packets / self.scan_period_s
            if rate >= self.heavy_hitter_pps:
                self._export(
                    TelemetryReport(
                        time=now,
                        flow=record.key,
                        packets=packets,
                        bytes=nbytes,
                        packets_per_s=rate,
                    )
                )
                obs = _obs.session()
                if obs is not None:
                    obs.probe("apps.telemetry.reports_exported")
                    obs.instant("heavy-hitter", now, track="apps/telemetry",
                                packets_per_s=rate)
            stats.last_packets = packets
            stats.last_bytes = nbytes
            if record.ref_flag:
                record.ref_flag = False
            else:
                # Idle for a full interval: retire the flow state and
                # return its counter memory.
                table.delete_nowait(record.key)
                self.pfe.memory.free(stats.counter.addr,
                                     PacketByteCounter.SIZE)
                self.flows_retired += 1
