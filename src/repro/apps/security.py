"""In-network security: DDoS mitigation on the datapath (§7).

§7: "To mitigate DDoS attacks, the MX systems based on Trio support a
feature to identify and drop malicious packets, capitalizing on the
chipset's high performance and flexible packet filter mechanism", and
"Trio's programmable architecture for anomaly detection on the network
datapath enables low-latency threat mitigation".

:class:`DDoSMitigator` implements a volumetric-attack defence:

* the data path tracks per-source packet rates with policers in the
  Shared Memory System (state stays next to the RMW engines, so hundreds
  of threads can police concurrently);
* sources that exceed their policer persistently accumulate *strikes*;
  timer threads periodically review strike counts, move offenders onto a
  blocklist, and rehabilitate sources whose REF flag shows they have
  gone quiet — the temporary-vs-permanent analysis §5 sketches for
  advanced straggler mitigation, applied to attackers;
* blocklisted sources are dropped at the first instruction of the data
  path, before any expensive processing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.net.headers import HeaderError
from repro.obs import bus as _obs
from repro.trio.counters import PacketByteCounter, Policer
from repro.trio.pfe import PFE, TrioApplication
from repro.trio.ppe import PacketContext, ThreadContext

__all__ = ["BlockEvent", "DDoSMitigator", "SourceState"]


@dataclass
class SourceState:
    """Per-source defence state (hash-table value keyed by source IP)."""

    policer: Policer
    strikes: int = 0
    blocked: bool = False
    first_seen: float = 0.0
    #: Consecutive review intervals with no traffic from this source.
    quiet_intervals: int = 0


@dataclass
class BlockEvent:
    """One blocklist decision, for the operator's audit trail."""

    time: float
    source_ip: int
    strikes: int
    action: str  # "block" or "unblock"


class DDoSMitigator(TrioApplication):
    """Per-source rate policing with timer-thread blocklist management."""

    name = "ddos-mitigator"

    def __init__(
        self,
        allowed_pps: float = 100_000.0,
        packet_size_hint: int = 512,
        burst_packets: int = 64,
        strike_threshold: int = 3,
        review_threads: int = 4,
        review_period_s: float = 1e-3,
        max_sources: int = 100_000,
        rehab_quiet_intervals: int = 3,
    ):
        """``allowed_pps`` is the per-source sustained packet budget;
        sources that keep exceeding it collect strikes at each review and
        are blocked after ``strike_threshold`` strikes.  A blocked source
        is rehabilitated after ``rehab_quiet_intervals`` consecutive
        review intervals with no traffic at all (its REF flag stayed
        clear) — the temporary-vs-permanent distinction of §5."""
        if strike_threshold < 1:
            raise ValueError(f"strike threshold must be >= 1: {strike_threshold}")
        if rehab_quiet_intervals < 1:
            raise ValueError(
                f"rehab interval count must be >= 1: {rehab_quiet_intervals}"
            )
        self.allowed_pps = allowed_pps
        self.packet_size_hint = packet_size_hint
        self.burst_packets = burst_packets
        self.strike_threshold = strike_threshold
        self.review_threads = review_threads
        self.review_period_s = review_period_s
        self.max_sources = max_sources
        self.rehab_quiet_intervals = rehab_quiet_intervals
        self.events: List[BlockEvent] = []
        self.packets_blocked = 0
        self.packets_policed = 0
        self.pfe: Optional[PFE] = None
        #: Sources that exceeded their policer since the last review.
        self._offenders: Set[int] = set()

    def on_install(self, pfe: PFE) -> None:
        self.pfe = pfe
        self.blocked_counter = PacketByteCounter(pfe.memory)
        if _obs.enabled():
            _obs.register_collector(self._obs_collect)
        pfe.timers.launch_periodic(
            name="ddos-review",
            num_threads=self.review_threads,
            period_s=self.review_period_s,
            callback=self._review,
        )

    def _obs_collect(self, registry) -> None:
        """Export the mitigator's counters (runs once at finalize)."""
        packets = registry.counter(
            "apps.security.packets", "packets seen by the defence",
            ("outcome",))
        packets.inc(self.packets_blocked, outcome="blocked")
        packets.inc(self.packets_policed, outcome="policed")
        registry.gauge(
            "apps.security.blocked_sources",
            "sources on the blocklist at finalize"
        ).set(len(self.blocked_sources))

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def handle_packet(self, tctx: ThreadContext, pctx: PacketContext):
        yield from tctx.execute(6)  # parse up to L3
        try:
            __, ip, __, __ = pctx.packet.parse_udp()
        except HeaderError:
            pctx.forward()
            return
        source = int(ip.src)
        record = yield from tctx.hash_lookup(("src", source))
        if record is None:
            if len(self.pfe.hash_table) >= self.max_sources:
                pctx.forward()
                return
            state = SourceState(
                policer=Policer(
                    self.pfe.env,
                    self.pfe.memory,
                    rate_bps=self.allowed_pps * self.packet_size_hint * 8,
                    burst_bytes=self.burst_packets * self.packet_size_hint,
                ),
                first_seen=self.pfe.env.now,
            )
            record, __ = yield from tctx.hash_insert_if_absent(
                ("src", source), state
            )
        state = record.value

        if state.blocked:
            # First-instruction drop: no further cycles for attack traffic.
            self.packets_blocked += 1
            yield from self.blocked_counter.increment(pctx.length)
            pctx.drop()
            return

        conforming = yield from state.policer.police(pctx.length)
        self.packets_policed += 1
        if not conforming:
            self._offenders.add(source)
            pctx.drop()
            return
        pctx.forward()

    # ------------------------------------------------------------------
    # Timer threads: strike review and rehabilitation
    # ------------------------------------------------------------------

    def _review(self, tctx: ThreadContext, thread_index: int):
        table = self.pfe.hash_table
        records = yield from table.scan_segment(
            thread_index % self.review_threads, self.review_threads
        )
        now = self.pfe.env.now
        for record in records:
            yield from tctx.execute(3)
            state = record.value
            if not isinstance(state, SourceState):
                continue
            source = record.key[1]
            if source in self._offenders:
                self._offenders.discard(source)
                state.strikes += 1
                if not state.blocked and state.strikes >= self.strike_threshold:
                    state.blocked = True
                    self.events.append(
                        BlockEvent(time=now, source_ip=source,
                                   strikes=state.strikes, action="block")
                    )
                    self._obs_block_event(now, source, "block")
                continue
            # No offence this interval.  A blocked source whose REF flag
            # stays clear for several consecutive intervals has gone
            # quiet: rehabilitate it (temporary attacker, §5's
            # temporary-vs-permanent analysis).
            if record.ref_flag:
                record.ref_flag = False
                state.quiet_intervals = 0
                continue
            state.quiet_intervals += 1
            if (state.blocked
                    and state.quiet_intervals >= self.rehab_quiet_intervals):
                state.blocked = False
                state.strikes = 0
                state.quiet_intervals = 0
                self.events.append(
                    BlockEvent(time=now, source_ip=source,
                               strikes=0, action="unblock")
                )
                self._obs_block_event(now, source, "unblock")

    @staticmethod
    def _obs_block_event(now: float, source: int, action: str) -> None:
        obs = _obs.session()
        if obs is not None:
            obs.probe("apps.security.block_events", action=action)
            obs.instant(f"{action} {source:#010x}", now,
                        track="apps/security")

    @property
    def blocked_sources(self) -> List[int]:
        """Currently blocked source IPs (control-plane view)."""
        return sorted(
            record.key[1]
            for record in self.pfe.hash_table.all_records()
            if isinstance(record.value, SourceState) and record.value.blocked
        )
