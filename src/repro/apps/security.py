"""In-network security: DDoS mitigation on the datapath (§7).

The implementation lives in :mod:`repro.nf.firewall` — the NF layer
owns both the Trio application and its backend-independent sibling
(:class:`repro.nf.firewall.FirewallNF`), so the strike/blocklist policy
is written once.  This module remains the stable import path for the
Trio application.
"""

from __future__ import annotations

from repro.nf.firewall import (
    BlockEvent,
    DDoSMitigator,
    SourceState,
    StrikePolicy,
)

__all__ = ["BlockEvent", "DDoSMitigator", "SourceState", "StrikePolicy"]
