"""In-network applications built on the public Trio API.

These implement the future use cases §7 of the paper sketches:

* :mod:`repro.apps.telemetry` — per-flow accounting with Packet/Byte
  Counters, periodic timer-thread sweeps, heavy-hitter reporting, and
  REF-flag-based retirement of idle flow state.
* :mod:`repro.apps.security` — DDoS mitigation: per-source rate tracking
  with policers, anomaly scoring by timer threads, and a shared-memory
  blocklist enforced on the data path.

Like Trio-ML, they are ordinary :class:`~repro.trio.pfe.TrioApplication`
subclasses — nothing in ``repro.trio`` knows about them.
"""

from repro.apps.telemetry import FlowStats, TelemetryMonitor
from repro.apps.security import DDoSMitigator, SourceState

__all__ = [
    "DDoSMitigator",
    "FlowStats",
    "SourceState",
    "TelemetryMonitor",
]
